package profilehub

// Hub client: verified pulls with a local content-addressed cache. The
// client implements profile.Source, so attaching it to a Registry gives
// every serving process lazy first-use pulls and periodic sync rides on
// the registry's existing Watch loop.
//
// Failure posture: transport errors and 5xx retry with exponential
// backoff + jitter; verification failures (hash, size, CRC, signature)
// never retry — re-requesting provably wrong bytes only re-downloads
// them; and when the origin is unreachable the last verified index and
// cached blobs keep the fleet serving (graceful degradation, counted in
// Stats so operators can see they are running on cached state).

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/profile"
)

// ClientOptions configures a hub client.
type ClientOptions struct {
	// Origin is the hub base URL, e.g. "http://hub.internal:9701".
	Origin string
	// CacheDir is the local content-addressed cache root. Required: the
	// cache is what makes origin outages non-events.
	CacheDir string
	// TrustedKey, when set, requires the index and every pulled profile
	// to verify against this Ed25519 public key.
	TrustedKey ed25519.PublicKey
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
	// RequestTimeout bounds each individual HTTP attempt (default 30s).
	RequestTimeout time.Duration
	// MaxAttempts caps tries per request including the first (default 4).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the retry schedule: the delay
	// before attempt n is BackoffBase·2ⁿ⁻¹ capped at BackoffMax, with
	// ±50% jitter (defaults 200ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// ClientStats is the client's cumulative counter snapshot, surfaced on
// the server's /healthz and /metrics.
type ClientStats struct {
	IndexFetches     int64 // index GETs that returned a fresh document
	IndexNotModified int64 // index GETs answered 304 by ETag
	IndexFallbacks   int64 // index reads served from cache with origin down
	BlobFetches      int64 // blobs downloaded and verified
	BlobCacheHits    int64 // pulls satisfied from the local cache
	Retries          int64 // individual HTTP attempts beyond the first
	VerifyFailures   int64 // hash/size/CRC/signature rejections
}

// Client pulls profiles from one origin through a local cache.
// It implements profile.Source.
type Client struct {
	opts  ClientOptions
	http  *http.Client
	cache *cache

	mu      sync.Mutex // serializes index refresh and blob download
	current *Index     // last verified index
	etag    string     // ETag the current index was served under

	indexFetches     atomic.Int64
	indexNotModified atomic.Int64
	indexFallbacks   atomic.Int64
	blobFetches      atomic.Int64
	blobCacheHits    atomic.Int64
	retries          atomic.Int64
	verifyFailures   atomic.Int64
}

// NewClient validates options and opens the cache. A cached index from a
// previous run is loaded (and signature-checked) eagerly so a process
// restarted during an origin outage still knows the catalog.
func NewClient(opts ClientOptions) (*Client, error) {
	if opts.Origin == "" {
		return nil, errors.New("profilehub: client needs an origin URL")
	}
	if opts.CacheDir == "" {
		return nil, errors.New("profilehub: client needs a cache directory")
	}
	opts.Origin = strings.TrimRight(opts.Origin, "/")
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 200 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	ca, err := newCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	c := &Client{opts: opts, http: opts.HTTPClient, cache: ca}
	if c.http == nil {
		c.http = &http.Client{}
	}
	if ix, _, etag, err := ca.loadIndex(); err == nil {
		if opts.TrustedKey == nil || ix.VerifySignature(opts.TrustedKey) == nil {
			c.current, c.etag = ix, etag
		}
	}
	return c, nil
}

// Stats snapshots the counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		IndexFetches:     c.indexFetches.Load(),
		IndexNotModified: c.indexNotModified.Load(),
		IndexFallbacks:   c.indexFallbacks.Load(),
		BlobFetches:      c.blobFetches.Load(),
		BlobCacheHits:    c.blobCacheHits.Load(),
		Retries:          c.retries.Load(),
		VerifyFailures:   c.verifyFailures.Load(),
	}
}

// Index returns the current catalog, revalidating against the origin
// (If-None-Match) on every call. When the origin is unreachable and a
// previously verified index exists, that snapshot is returned instead —
// degraded, counted, but serving.
func (c *Client) Index(ctx context.Context) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshIndexLocked(ctx)
}

func (c *Client) refreshIndexLocked(ctx context.Context) (*Index, error) {
	var hdr http.Header
	if c.etag != "" && c.current != nil {
		hdr = http.Header{"If-None-Match": []string{c.etag}}
	}
	status, body, respHdr, err := c.do(ctx, c.opts.Origin+IndexPath, hdr, MaxIndexBytes+1)
	if err != nil {
		if c.current != nil {
			c.indexFallbacks.Add(1)
			return c.current, nil
		}
		return nil, fmt.Errorf("profilehub: fetching index from %s: %w", c.opts.Origin, err)
	}
	if status == http.StatusNotModified {
		c.indexNotModified.Add(1)
		return c.current, nil
	}
	if status != http.StatusOK {
		if c.current != nil {
			c.indexFallbacks.Add(1)
			return c.current, nil
		}
		return nil, fmt.Errorf("profilehub: index fetch: origin returned %d", status)
	}
	ix, err := ParseIndex(body)
	if err != nil {
		c.verifyFailures.Add(1)
		return nil, err
	}
	if c.opts.TrustedKey != nil {
		if err := ix.VerifySignature(c.opts.TrustedKey); err != nil {
			c.verifyFailures.Add(1)
			return nil, err
		}
	}
	c.indexFetches.Add(1)
	etag := respHdr.Get("ETag")
	if err := c.cache.storeIndex(body, etag); err != nil {
		return nil, err
	}
	c.current, c.etag = ix, etag
	return ix, nil
}

// Pull fetches one profile by name and version (0 = latest), returning
// the verified raw .dnp bytes and the index entry they matched.
func (c *Client) Pull(ctx context.Context, name string, version uint32) ([]byte, *Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, err := c.refreshIndexLocked(ctx)
	if err != nil {
		return nil, nil, err
	}
	e, err := ix.Resolve(name, version)
	if err != nil {
		return nil, nil, err
	}
	// Authenticity gate BEFORE any bytes move: with a trust key, an
	// entry whose signature record does not verify is not fetchable.
	if c.opts.TrustedKey != nil {
		if err := e.Record().VerifyDigest(c.opts.TrustedKey, e.Ref(), e.SHA256); err != nil {
			c.verifyFailures.Add(1)
			return nil, nil, err
		}
	}
	if data, ok := c.cache.loadBlob(e.SHA256); ok && int64(len(data)) == e.Size {
		c.blobCacheHits.Add(1)
		c.cache.writeRef(e.Ref(), e.SHA256)
		return data, e, nil
	}
	data, err := c.fetchBlob(ctx, e)
	if err != nil {
		return nil, nil, err
	}
	if err := c.cache.commitBlob(e.SHA256, data); err != nil {
		return nil, nil, err
	}
	if err := c.cache.writeRef(e.Ref(), e.SHA256); err != nil {
		return nil, nil, err
	}
	c.blobFetches.Add(1)
	return data, e, nil
}

// GC applies a retention policy to the local cache.
func (c *Client) GC(policy profile.GCPolicy) (*profile.GCResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache.GC(policy)
}

// Fetch implements profile.Source.
func (c *Client) Fetch(ctx context.Context, name string, version uint32) ([]byte, error) {
	data, _, err := c.Pull(ctx, name, version)
	return data, err
}

// List implements profile.Source.
func (c *Client) List(ctx context.Context) ([]profile.SourceRef, error) {
	ix, err := c.Index(ctx)
	if err != nil {
		return nil, err
	}
	refs := make([]profile.SourceRef, 0, len(ix.Profiles))
	for i := range ix.Profiles {
		e := &ix.Profiles[i]
		refs = append(refs, profile.SourceRef{Name: e.Name, Version: e.Version})
	}
	return refs, nil
}

// fetchBlob downloads one blob with resume support and verifies it
// against everything the index promised: size, sha256, embedded CRC32,
// and (when trusted) the signature record. Partial downloads persist as
// .part files and resume with a Range request on the next attempt —
// including attempts in a later process.
func (c *Client) fetchBlob(ctx context.Context, e *Entry) ([]byte, error) {
	partPath := c.cache.partPath(e.SHA256)
	url := c.opts.Origin + BlobPathPrefix + e.SHA256

	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if err := sleepCtx(ctx, c.backoff(attempt-1)); err != nil {
				return nil, err
			}
		}
		data, retryable, err := c.fetchBlobOnce(ctx, url, partPath, e)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
	}
	return nil, fmt.Errorf("profilehub: pulling %s: %w (after %d attempts)", e.Ref(), lastErr, c.opts.MaxAttempts)
}

// fetchBlobOnce is one download attempt. It returns (bytes, false, nil)
// on success, or an error plus whether the failure class is worth
// retrying.
func (c *Client) fetchBlobOnce(ctx context.Context, url, partPath string, e *Entry) (_ []byte, retryable bool, _ error) {
	part, _ := os.ReadFile(partPath)
	if int64(len(part)) >= e.Size {
		// A stale oversized partial can't be right; restart clean.
		os.Remove(partPath)
		part = nil
	}
	var hdr http.Header
	if len(part) > 0 {
		hdr = http.Header{"Range": []string{fmt.Sprintf("bytes=%d-", len(part))}}
	}
	status, body, _, err := c.doOnce(ctx, url, hdr, e.Size+1)
	if err != nil {
		// Transport died mid-body; bank whatever prefix arrived so the
		// next attempt resumes instead of restarting.
		if len(body) > 0 && (status == http.StatusOK || status == http.StatusPartialContent) {
			banked := body
			if status == http.StatusPartialContent {
				banked = append(append([]byte(nil), part...), body...)
			}
			if int64(len(banked)) < e.Size {
				profile.WriteFileAtomic(partPath, banked)
			}
		}
		return nil, true, err
	}
	var data []byte
	switch status {
	case http.StatusOK:
		data = body // full body: any partial is obsolete
	case http.StatusPartialContent:
		data = append(append([]byte(nil), part...), body...)
	case http.StatusRequestedRangeNotSatisfiable:
		os.Remove(partPath)
		return nil, true, fmt.Errorf("origin rejected resume range at offset %d", len(part))
	default:
		if status >= 500 || status == http.StatusTooManyRequests {
			return nil, true, fmt.Errorf("origin returned %d", status)
		}
		return nil, false, fmt.Errorf("origin returned %d", status)
	}
	if int64(len(data)) < e.Size {
		// Truncated transfer: keep what arrived for the next attempt's
		// Range request, then retry.
		profile.WriteFileAtomic(partPath, data)
		return nil, true, fmt.Errorf("short blob: got %d of %d bytes", len(data), e.Size)
	}
	os.Remove(partPath)
	if err := c.verifyBlob(data, e); err != nil {
		c.verifyFailures.Add(1)
		return nil, false, err
	}
	return data, false, nil
}

// verifyBlob checks downloaded bytes against the index entry. Order
// matters for error quality: size, content hash, embedded CRC cross-
// check, then signature.
func (c *Client) verifyBlob(data []byte, e *Entry) error {
	if int64(len(data)) != e.Size {
		return fmt.Errorf("profilehub: %s: blob is %d bytes, index says %d", e.Ref(), len(data), e.Size)
	}
	if got := profile.BlobSHA256(data); got != e.SHA256 {
		return fmt.Errorf("profilehub: %s: blob sha256 %s does not match index %s", e.Ref(), got, e.SHA256)
	}
	p, err := profile.Decode(data) // structural + CRC validation
	if err != nil {
		return fmt.Errorf("profilehub: %s: blob is not a valid profile: %w", e.Ref(), err)
	}
	if got := fmt.Sprintf("%08x", blobCRC(data)); got != e.CRC32 {
		return fmt.Errorf("profilehub: %s: blob crc32 %s does not match index %s", e.Ref(), got, e.CRC32)
	}
	if p.Ref() != e.Ref() {
		return fmt.Errorf("profilehub: blob for %s declares itself %s", e.Ref(), p.Ref())
	}
	if c.opts.TrustedKey != nil {
		if err := e.Record().Verify(c.opts.TrustedKey, e.Ref(), data); err != nil {
			return err
		}
	}
	return nil
}

// do runs a GET with the retry/backoff schedule. Index fetches use it;
// blob fetches manage their own loop because partial bodies are worth
// keeping between attempts.
func (c *Client) do(ctx context.Context, url string, hdr http.Header, maxBytes int64) (int, []byte, http.Header, error) {
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if err := sleepCtx(ctx, c.backoff(attempt-1)); err != nil {
				return 0, nil, nil, err
			}
		}
		status, body, respHdr, err := c.doOnce(ctx, url, hdr, maxBytes)
		if err != nil {
			lastErr = err
			continue
		}
		if status >= 500 || status == http.StatusTooManyRequests {
			lastErr = fmt.Errorf("origin returned %d", status)
			continue
		}
		return status, body, respHdr, nil
	}
	return 0, nil, nil, fmt.Errorf("%w (after %d attempts)", lastErr, c.opts.MaxAttempts)
}

// doOnce is a single bounded-read GET attempt.
func (c *Client) doOnce(ctx context.Context, url string, hdr http.Header, maxBytes int64) (int, []byte, http.Header, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes))
	if err != nil {
		// A broken body mid-read is a transport failure, but the prefix
		// that DID arrive is still useful to a resuming caller.
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent {
			return resp.StatusCode, body, resp.Header, err
		}
		return 0, nil, nil, err
	}
	return resp.StatusCode, body, resp.Header, nil
}

// backoff computes the pre-attempt delay: base·2ⁿ⁻¹ capped, ±50% jitter.
func (c *Client) backoff(n int) time.Duration {
	d := c.opts.BackoffBase << (n - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Jitter decorrelates a fleet that lost its origin at the same
	// moment; math/rand's global source is fine for scheduling.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// blobCRC reads the trailing stored CRC32 of an encoded profile.
func blobCRC(data []byte) uint32 {
	if len(data) < 4 {
		return 0
	}
	return uint32(data[len(data)-4])<<24 | uint32(data[len(data)-3])<<16 |
		uint32(data[len(data)-2])<<8 | uint32(data[len(data)-1])
}
