package profilehub

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/profile"
)

// newTestOrigin publishes the given refs from a fresh directory and
// returns the origin, its directory, and an httptest server for it.
func newTestOrigin(tb testing.TB, opts OriginOptions, refs ...string) (*Origin, string, *httptest.Server) {
	tb.Helper()
	if opts.Dir == "" {
		opts.Dir = tb.TempDir()
	}
	for _, ref := range refs {
		name, version, _, err := profile.ParseRef(ref)
		if err != nil {
			tb.Fatal(err)
		}
		p, data := testProfile(tb, name, version)
		if err := profile.WriteFileAtomic(filepath.Join(opts.Dir, p.FileName()), data); err != nil {
			tb.Fatal(err)
		}
	}
	o, err := NewOrigin(opts)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(o)
	tb.Cleanup(ts.Close)
	return o, opts.Dir, ts
}

func TestOriginIndexETagRevalidation(t *testing.T) {
	_, dir, ts := newTestOrigin(t, OriginOptions{}, "a@1", "b@2")
	resp, err := http.Get(ts.URL + IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("index GET: %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("index served without an ETag")
	}
	ix, err := ParseIndex(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Profiles) != 2 {
		t.Fatalf("index lists %d profiles, want 2", len(ix.Profiles))
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+IndexPath, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged index revalidation: %d, want 304", resp.StatusCode)
	}

	// Changing the directory changes the ETag: the same If-None-Match now
	// gets a fresh 200 listing the new profile.
	p, data := testProfile(t, "c", 1)
	if err := profile.WriteFileAtomic(filepath.Join(dir, p.FileName()), data); err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("changed index revalidation: %d, want 200", resp.StatusCode)
	}
	if ix, err = ParseIndex(body); err != nil || len(ix.Profiles) != 3 {
		t.Fatalf("rebuilt index: %d profiles, %v", len(ix.Profiles), err)
	}
}

func TestOriginBlobServingAndRange(t *testing.T) {
	o, _, ts := newTestOrigin(t, OriginOptions{}, "a@1")
	ix, err := o.Index()
	if err != nil {
		t.Fatal(err)
	}
	e := &ix.Profiles[0]
	_, want := testProfile(t, "a", 1)

	resp, err := http.Get(ts.URL + BlobPathPrefix + e.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(got, want) {
		t.Fatalf("blob GET: %d, %d bytes", resp.StatusCode, len(got))
	}
	if resp.Header.Get("ETag") != `"`+e.SHA256+`"` {
		t.Fatalf("blob ETag %q, want quoted sha", resp.Header.Get("ETag"))
	}

	// Range resume: ask for the tail, get a 206 with exactly the rest.
	half := len(want) / 2
	req, _ := http.NewRequest(http.MethodGet, ts.URL+BlobPathPrefix+e.SHA256, nil)
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-", half))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range GET: %d, want 206", resp.StatusCode)
	}
	if !bytes.Equal(got, want[half:]) {
		t.Fatal("range body is not the requested tail")
	}

	// Unknown and malformed content addresses.
	for _, path := range []string{
		BlobPathPrefix + "0000000000000000000000000000000000000000000000000000000000000000",
		BlobPathPrefix + "not-a-sha",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 404/400", path, resp.StatusCode)
		}
	}
}

func push(tb testing.TB, url string, data []byte, hdr map[string]string) *http.Response {
	tb.Helper()
	req, err := http.NewRequest(http.MethodPost, url+PushPath, bytes.NewReader(data))
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestOriginPushLifecycle(t *testing.T) {
	o, dir, ts := newTestOrigin(t, OriginOptions{PushKey: "sekrit"})
	_, data := testProfile(t, "pushed", 1)
	auth := map[string]string{"X-Hub-Push-Key": "sekrit"}

	if resp := push(t, ts.URL, data, nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("keyless push: %d, want 403", resp.StatusCode)
	}
	if resp := push(t, ts.URL, data, auth); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first push: %d, want 201", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "pushed@1.dnp")); err != nil {
		t.Fatalf("pushed profile not on disk: %v", err)
	}
	// Idempotent re-push of identical bytes.
	if resp := push(t, ts.URL, data, auth); resp.StatusCode != http.StatusOK {
		t.Fatalf("identical re-push: %d, want 200", resp.StatusCode)
	}
	// Conflicting bytes under the same name@version: versions are
	// immutable.
	p2, _ := testProfile(t, "pushed", 1)
	p2.Comment = "different bytes, same ref"
	conflicting, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp := push(t, ts.URL, conflicting, auth); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting re-push: %d, want 409", resp.StatusCode)
	}
	// Garbage body.
	if resp := push(t, ts.URL, []byte("not a profile"), auth); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage push: %d, want 400", resp.StatusCode)
	}
	// The pushed profile shows up in the next index build.
	ix, err := o.Index()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Resolve("pushed", 1); err != nil {
		t.Fatalf("pushed profile not indexed: %v", err)
	}
	if got := o.Stats().Pushes; got != 2 {
		t.Fatalf("push counter %d, want 2 (created + idempotent)", got)
	}
}

func TestOriginPushOfflineSignature(t *testing.T) {
	pub, priv := testHubKey(t)
	o, dir, ts := newTestOrigin(t, OriginOptions{})
	_, data := testProfile(t, "signed", 1)
	rec := profile.Sign(priv, "signed@1", data)

	resp := push(t, ts.URL, data, map[string]string{
		"X-Hub-Sig":        base64.StdEncoding.EncodeToString(rec.Sig),
		"X-Hub-Sig-Key-Id": rec.KeyID,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("signed push: %d, want 201", resp.StatusCode)
	}
	back, err := profile.ReadSignature(filepath.Join(dir, "signed@1.dnp"+profile.SigExt))
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	if err := back.Verify(pub, "signed@1", data); err != nil {
		t.Fatalf("sidecar does not verify: %v", err)
	}
	// The index entry carries the offline signature even though the
	// origin itself has no key.
	ix, err := o.Index()
	if err != nil {
		t.Fatal(err)
	}
	e, err := ix.Resolve("signed", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Record().Verify(pub, "signed@1", data); err != nil {
		t.Fatalf("indexed signature: %v", err)
	}

	// A malformed signature fails the whole push — no blob, no sidecar.
	_, data2 := testProfile(t, "signed", 2)
	resp = push(t, ts.URL, data2, map[string]string{"X-Hub-Sig": "!!not-base64!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed sig push: %d, want 400", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "signed@2.dnp")); !os.IsNotExist(err) {
		t.Fatal("blob published despite rejected signature")
	}
}

func TestOriginSignsEntriesAndIndex(t *testing.T) {
	pub, priv := testHubKey(t)
	o, _, _ := newTestOrigin(t, OriginOptions{SigningKey: priv}, "a@1")
	ix, err := o.Index()
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.VerifySignature(pub); err != nil {
		t.Fatalf("index signature: %v", err)
	}
	e := &ix.Profiles[0]
	_, data := testProfile(t, "a", 1)
	if err := e.Record().Verify(pub, "a@1", data); err != nil {
		t.Fatalf("entry signature: %v", err)
	}
}

func TestOriginSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk@1.dnp"), []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	o, _, _ := newTestOrigin(t, OriginOptions{Dir: dir}, "ok@1")
	ix, err := o.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Profiles) != 1 || ix.Profiles[0].Ref() != "ok@1" {
		t.Fatalf("index = %+v, want just ok@1", ix.Profiles)
	}
}

func TestOriginRejectsDuplicateRefs(t *testing.T) {
	dir := t.TempDir()
	_, data := testProfile(t, "dup", 1)
	for _, fn := range []string{"dup@1.dnp", "copy-of-dup.dnp"} {
		if err := os.WriteFile(filepath.Join(dir, fn), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewOrigin(OriginOptions{Dir: dir}); err == nil {
		t.Fatal("two files declaring the same ref should fail the scan")
	}
}
