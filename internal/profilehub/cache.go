package profilehub

// Local content-addressed cache backing the client. Layout under the
// cache directory:
//
//	index.json          last verified index document (byte-exact)
//	index.etag          the ETag that document was served under
//	blobs/<sha256>      verified profile bytes, named by content address
//	blobs/<sha256>.part partial download awaiting resume
//	refs/<name>@<ver>   one line: the sha256 hex the ref resolved to;
//	                    the file's mtime is the ref's last-access time,
//	                    which is what GC's LRU ordering reads.
//
// Everything verified is committed with temp+rename, so a crash leaves
// either the old state or the new state — never a torn file that a
// later run would have to distrust.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/profile"
)

// cache is the on-disk store. Methods are not internally locked; the
// owning Client serializes writers, and readers tolerate concurrent
// replacement because commits are atomic renames.
type cache struct {
	dir string
}

func newCache(dir string) (*cache, error) {
	for _, sub := range [...]string{"", "blobs", "refs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("profilehub: cache dir: %w", err)
		}
	}
	return &cache{dir: dir}, nil
}

func (c *cache) indexPath() string { return filepath.Join(c.dir, "index.json") }
func (c *cache) etagPath() string  { return filepath.Join(c.dir, "index.etag") }
func (c *cache) blobPath(sha string) string {
	return filepath.Join(c.dir, "blobs", sha)
}
func (c *cache) partPath(sha string) string { return c.blobPath(sha) + ".part" }
func (c *cache) refPath(ref string) string  { return filepath.Join(c.dir, "refs", ref) }

// storeIndex persists a verified index document with the ETag it was
// served under.
func (c *cache) storeIndex(data []byte, etag string) error {
	if err := profile.WriteFileAtomic(c.indexPath(), data); err != nil {
		return err
	}
	return profile.WriteFileAtomic(c.etagPath(), []byte(etag))
}

// loadIndex returns the cached index document and ETag, re-validating
// the document through ParseIndex so a corrupted cache reads as absent,
// not as truth.
func (c *cache) loadIndex() (*Index, []byte, string, error) {
	data, err := os.ReadFile(c.indexPath())
	if err != nil {
		return nil, nil, "", err
	}
	ix, err := ParseIndex(data)
	if err != nil {
		return nil, nil, "", err
	}
	etag := ""
	if raw, err := os.ReadFile(c.etagPath()); err == nil {
		etag = strings.TrimSpace(string(raw))
	}
	return ix, data, etag, nil
}

// loadBlob returns cached bytes for a content address, re-hashing on
// every load: a cache hit is only a hit if the bytes still match their
// name. A mismatch (bit rot, tampering) deletes the file and reads as a
// miss so the client re-pulls.
func (c *cache) loadBlob(sha string) ([]byte, bool) {
	data, err := os.ReadFile(c.blobPath(sha))
	if err != nil {
		return nil, false
	}
	if profile.BlobSHA256(data) != sha {
		os.Remove(c.blobPath(sha))
		return nil, false
	}
	return data, true
}

// commitBlob lands verified bytes at their content address.
func (c *cache) commitBlob(sha string, data []byte) error {
	return profile.WriteFileAtomic(c.blobPath(sha), data)
}

// writeRef records which blob a name@version resolved to and stamps the
// access time.
func (c *cache) writeRef(ref, sha string) error {
	if err := profile.WriteFileAtomic(c.refPath(ref), []byte(sha+"\n")); err != nil {
		return err
	}
	return c.touchRef(ref)
}

// touchRef bumps a ref's last-access time for LRU retention.
func (c *cache) touchRef(ref string) error {
	now := time.Now()
	return os.Chtimes(c.refPath(ref), now, now)
}

// cacheRef is one ref entry as seen by GC.
type cacheRef struct {
	ref      string
	name     string
	version  uint32
	sha      string
	size     int64
	lastUsed time.Time
}

// refs enumerates the ref table with blob sizes, skipping malformed
// entries.
func (c *cache) refs() ([]cacheRef, error) {
	dirents, err := os.ReadDir(filepath.Join(c.dir, "refs"))
	if err != nil {
		return nil, err
	}
	var out []cacheRef
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		name, version, hasVersion, err := profile.ParseRef(de.Name())
		if err != nil || !hasVersion {
			continue
		}
		raw, err := os.ReadFile(c.refPath(de.Name()))
		if err != nil {
			continue
		}
		sha := strings.TrimSpace(string(raw))
		if validateSHA256(sha) != nil {
			continue
		}
		r := cacheRef{ref: de.Name(), name: name, version: version, sha: sha}
		if info, err := de.Info(); err == nil {
			r.lastUsed = info.ModTime()
		}
		if info, err := os.Stat(c.blobPath(sha)); err == nil {
			r.size = info.Size()
		}
		out = append(out, r)
	}
	return out, nil
}

// GC applies a retention policy to the cache. Unlike a registry
// directory (where the newest version of a name is live serving state),
// everything here is re-fetchable, so the byte cap may evict any ref —
// least recently used first. After ref eviction, blobs no ref points at
// are swept, as are orphaned .part files older than a day.
func (c *cache) GC(policy profile.GCPolicy) (*profile.GCResult, error) {
	refs, err := c.refs()
	if err != nil {
		return nil, err
	}
	res := &profile.GCResult{}
	drop := make(map[string]bool)

	if policy.MaxVersionsPerName > 0 {
		byName := make(map[string][]cacheRef)
		for _, r := range refs {
			byName[r.name] = append(byName[r.name], r)
		}
		for _, group := range byName {
			sort.Slice(group, func(i, j int) bool { return group[i].version > group[j].version })
			for _, r := range group[min(policy.MaxVersionsPerName, len(group)):] {
				drop[r.ref] = true
			}
		}
	}

	if policy.MaxBytes > 0 {
		var survivors []cacheRef
		var total int64
		refcount := make(map[string]int) // blobs shared across refs count once
		for _, r := range refs {
			if drop[r.ref] {
				continue
			}
			survivors = append(survivors, r)
			if refcount[r.sha] == 0 {
				total += r.size
			}
			refcount[r.sha]++
		}
		// Least recently used first; evict until under budget.
		sort.Slice(survivors, func(i, j int) bool { return survivors[i].lastUsed.Before(survivors[j].lastUsed) })
		for _, r := range survivors {
			if total <= policy.MaxBytes {
				break
			}
			drop[r.ref] = true
			refcount[r.sha]--
			if refcount[r.sha] == 0 {
				total -= r.size
			}
		}
	}

	// Delete dropped refs, then sweep unreferenced blobs.
	live := make(map[string]bool)
	for _, r := range refs {
		if drop[r.ref] {
			res.Removed = append(res.Removed, c.refPath(r.ref))
			if err := os.Remove(c.refPath(r.ref)); err != nil && !os.IsNotExist(err) {
				return res, err
			}
			continue
		}
		if !live[r.sha] {
			live[r.sha] = true
			res.RetainedBytes += r.size
		}
	}
	blobs, err := os.ReadDir(filepath.Join(c.dir, "blobs"))
	if err != nil {
		return res, err
	}
	for _, de := range blobs {
		name := de.Name()
		if strings.HasSuffix(name, ".part") {
			// Orphaned partials from crashed pulls; a day is far past any
			// plausible retry horizon.
			if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > 24*time.Hour {
				os.Remove(filepath.Join(c.dir, "blobs", name))
			}
			continue
		}
		if !live[name] {
			res.Removed = append(res.Removed, c.blobPath(name))
			if err := os.Remove(c.blobPath(name)); err != nil && !os.IsNotExist(err) {
				return res, err
			}
		}
	}
	sort.Strings(res.Removed)
	return res, nil
}
