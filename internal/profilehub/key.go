package profilehub

// Ed25519 key files for the hub trust model. The formats are one-line
// labeled base64 — greppable, diffable, no ASN.1 — because the keys are
// raw Ed25519 and the only consumers are this package's own tools:
//
//	deepn-hub-ed25519-seed:<base64 of the 32-byte private seed>
//	deepn-hub-ed25519-public:<base64 of the 32-byte public key>

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"fmt"
	"os"
	"strings"
)

const (
	privKeyPrefix = "deepn-hub-ed25519-seed:"
	pubKeyPrefix  = "deepn-hub-ed25519-public:"
)

// GenerateKey creates a fresh Ed25519 signing key pair.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

// WritePrivateKeyFile persists the private seed, owner-readable only.
func WritePrivateKeyFile(path string, priv ed25519.PrivateKey) error {
	if len(priv) != ed25519.PrivateKeySize {
		return fmt.Errorf("profilehub: private key is %d bytes, want %d", len(priv), ed25519.PrivateKeySize)
	}
	line := privKeyPrefix + base64.StdEncoding.EncodeToString(priv.Seed()) + "\n"
	return os.WriteFile(path, []byte(line), 0o600)
}

// ReadPrivateKeyFile loads a private key file written by
// WritePrivateKeyFile.
func ReadPrivateKeyFile(path string) (ed25519.PrivateKey, error) {
	raw, err := readKeyLine(path, privKeyPrefix)
	if err != nil {
		return nil, err
	}
	if len(raw) != ed25519.SeedSize {
		return nil, fmt.Errorf("%s: seed is %d bytes, want %d", path, len(raw), ed25519.SeedSize)
	}
	return ed25519.NewKeyFromSeed(raw), nil
}

// WritePublicKeyFile persists the public key.
func WritePublicKeyFile(path string, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("profilehub: public key is %d bytes, want %d", len(pub), ed25519.PublicKeySize)
	}
	line := pubKeyPrefix + base64.StdEncoding.EncodeToString(pub) + "\n"
	return os.WriteFile(path, []byte(line), 0o644)
}

// ReadPublicKeyFile loads a public key file written by
// WritePublicKeyFile.
func ReadPublicKeyFile(path string) (ed25519.PublicKey, error) {
	raw, err := readKeyLine(path, pubKeyPrefix)
	if err != nil {
		return nil, err
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("%s: public key is %d bytes, want %d", path, len(raw), ed25519.PublicKeySize)
	}
	return ed25519.PublicKey(raw), nil
}

func readKeyLine(path, prefix string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	line := strings.TrimSpace(string(data))
	if !strings.HasPrefix(line, prefix) {
		return nil, fmt.Errorf("%s: not a %q key file", path, strings.TrimSuffix(prefix, ":"))
	}
	raw, err := base64.StdEncoding.DecodeString(strings.TrimPrefix(line, prefix))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return raw, nil
}
