package profilehub

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dct"
	"repro/internal/freqstat"
	"repro/internal/plm"
	"repro/internal/profile"
)

// testProfile builds a deterministic, valid profile and its encoded
// bytes. Versions get distinct table bytes so distinct blobs have
// distinct content addresses.
func testProfile(tb testing.TB, name string, version uint32) (*profile.Profile, []byte) {
	tb.Helper()
	stats := &freqstat.Stats{Blocks: 4096}
	for i := 0; i < 64; i++ {
		f := float64(i)
		stats.Mean[i] = 1 + f/8
		stats.Std[i] = 80 - f
		stats.Min[i] = -(1 + 2*f)
		stats.Max[i] = 1 + 2*f
	}
	p := &profile.Profile{
		Name:         name,
		Version:      version,
		CreatedUnix:  1700000000,
		Transform:    dct.TransformAAN,
		SampledCount: 512,
		Params: plm.Params{
			A: 255, B: 80, C: 240,
			K1: 9.75, K2: 1, K3: 3,
			T1: 20, T2: 60,
			QMin: 5, QMax: 255,
		},
		LumaStats: stats,
	}
	for i := range p.Luma {
		p.Luma[i] = uint16(1 + (i*3)%255)
		p.Chroma[i] = uint16(1 + (i*7)%255)
	}
	p.Luma[0] = uint16(1 + version%255)
	data, err := p.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	return p, data
}

func testHubKey(tb testing.TB) (ed25519.PublicKey, ed25519.PrivateKey) {
	tb.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		tb.Fatal(err)
	}
	return pub, priv
}

// testIndex builds a small valid index over synthetic entries.
func testIndex(tb testing.TB, refs ...string) *Index {
	tb.Helper()
	ix := &Index{Format: ProtocolVersion, GeneratedUnix: 1700000100}
	for _, ref := range refs {
		name, version, hasVersion, err := profile.ParseRef(ref)
		if err != nil || !hasVersion {
			tb.Fatalf("bad test ref %q", ref)
		}
		_, data := testProfile(tb, name, version)
		ix.Profiles = append(ix.Profiles, Entry{
			Name:    name,
			Version: version,
			SHA256:  profile.BlobSHA256(data),
			Size:    int64(len(data)),
			CRC32:   fmt.Sprintf("%08x", blobCRC(data)),
		})
	}
	return ix
}

func TestIndexResolve(t *testing.T) {
	ix := testIndex(t, "a@1", "a@3", "b@2")
	e, err := ix.Resolve("a", 1)
	if err != nil || e.Ref() != "a@1" {
		t.Fatalf("explicit resolve: %v %v", e, err)
	}
	e, err = ix.Resolve("a", 0)
	if err != nil || e.Ref() != "a@3" {
		t.Fatalf("bare resolve should pick highest: %v %v", e, err)
	}
	if _, err := ix.Resolve("a", 2); !errors.Is(err, profile.ErrNotFound) {
		t.Fatalf("missing version: %v", err)
	}
	if _, err := ix.Resolve("zzz", 0); !errors.Is(err, profile.ErrNotFound) {
		t.Fatalf("missing name: %v", err)
	}
}

func TestIndexSignVerifyAndTamper(t *testing.T) {
	pub, priv := testHubKey(t)
	otherPub, _ := testHubKey(t)
	ix := testIndex(t, "a@1", "b@1")
	// Give one entry an inline signature so the manifest covers it.
	_, data := testProfile(t, "a", 1)
	rec := profile.Sign(priv, "a@1", data)
	ix.Profiles[0].Sig, ix.Profiles[0].SigKeyID = rec.Sig, rec.KeyID

	if err := ix.VerifySignature(pub); err == nil {
		t.Fatal("unsigned index verified against a trust key")
	}
	ix.Sign(priv)
	if err := ix.VerifySignature(pub); err != nil {
		t.Fatalf("signed index: %v", err)
	}
	if err := ix.VerifySignature(otherPub); err == nil {
		t.Fatal("index verified against the wrong key")
	}

	// Tampering with any covered field invalidates the signature —
	// including stripping a per-entry signature (a downgrade attack).
	tampered := *ix
	tampered.Profiles = append([]Entry(nil), ix.Profiles...)
	tampered.Profiles[1].SHA256 = strings.Repeat("0", 64)
	if err := tampered.VerifySignature(pub); err == nil {
		t.Fatal("sha swap survived signature verification")
	}
	stripped := *ix
	stripped.Profiles = append([]Entry(nil), ix.Profiles...)
	stripped.Profiles[0].Sig, stripped.Profiles[0].SigKeyID = nil, ""
	if err := stripped.VerifySignature(pub); err == nil {
		t.Fatal("stripping an entry signature survived verification")
	}
}

func TestIndexEncodeCanonical(t *testing.T) {
	a := testIndex(t, "b@2", "a@1", "a@3")
	b := testIndex(t, "a@3", "b@2", "a@1")
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("entry order leaks into encoded index")
	}
	back, err := ParseIndex(ea)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Profiles) != 3 || back.Profiles[0].Ref() != "a@1" {
		t.Fatalf("round trip: %+v", back.Profiles)
	}
}

func TestParseIndexRejectsMalformed(t *testing.T) {
	valid := testIndex(t, "a@1")
	encode := func(mutate func(*Index)) []byte {
		ix := *valid
		ix.Profiles = append([]Entry(nil), valid.Profiles...)
		mutate(&ix)
		data, err := ix.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"not json":      []byte("][ nope"),
		"wrong format":  encode(func(ix *Index) { ix.Format = 99 }),
		"dup ref":       encode(func(ix *Index) { ix.Profiles = append(ix.Profiles, ix.Profiles[0]) }),
		"version zero":  encode(func(ix *Index) { ix.Profiles[0].Version = 0 }),
		"bad name":      encode(func(ix *Index) { ix.Profiles[0].Name = "no spaces allowed" }),
		"short sha":     encode(func(ix *Index) { ix.Profiles[0].SHA256 = "abcd" }),
		"upper sha":     encode(func(ix *Index) { ix.Profiles[0].SHA256 = strings.Repeat("A", 64) }),
		"zero size":     encode(func(ix *Index) { ix.Profiles[0].Size = 0 }),
		"huge size":     encode(func(ix *Index) { ix.Profiles[0].Size = MaxBlobBytes + 1 }),
		"bad crc":       encode(func(ix *Index) { ix.Profiles[0].CRC32 = "xyzw1234" }),
		"short crc":     encode(func(ix *Index) { ix.Profiles[0].CRC32 = "ab" }),
		"short sig":     encode(func(ix *Index) { ix.Profiles[0].Sig = []byte{1, 2, 3} }),
		"short idx sig": encode(func(ix *Index) { ix.Sig = []byte{1} }),
		"oversized doc": append(encode(func(ix *Index) {}), bytes.Repeat([]byte(" "), MaxIndexBytes)...),
	}
	for name, data := range cases {
		if _, err := ParseIndex(data); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
	if _, err := ParseIndex(encode(func(ix *Index) {})); err != nil {
		t.Fatalf("control case should parse: %v", err)
	}
}
