package profilehub

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
)

// newTestClient builds a client against an origin URL with a fast retry
// schedule suitable for tests.
func newTestClient(tb testing.TB, origin string, mutate func(*ClientOptions)) *Client {
	tb.Helper()
	opts := ClientOptions{
		Origin:         origin,
		CacheDir:       tb.TempDir(),
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    4,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := NewClient(opts)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func TestClientPullFetchThenCacheHit(t *testing.T) {
	_, _, ts := newTestOrigin(t, OriginOptions{}, "a@1", "a@2")
	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()

	_, want := testProfile(t, "a", 2)
	data, e, err := c.Pull(ctx, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Ref() != "a@2" || !bytes.Equal(data, want) {
		t.Fatalf("pulled %s, %d bytes", e.Ref(), len(data))
	}
	if st := c.Stats(); st.BlobFetches != 1 || st.BlobCacheHits != 0 {
		t.Fatalf("first pull stats: %+v", st)
	}
	// Same blob again: cache hit, no second download.
	if _, _, err := c.Pull(ctx, "a", 2); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.BlobFetches != 1 || st.BlobCacheHits != 1 {
		t.Fatalf("second pull stats: %+v", st)
	}
}

func TestClientRetries5xxThenSucceeds(t *testing.T) {
	o, _, _ := newTestOrigin(t, OriginOptions{}, "a@1")
	var blobFailures atomic.Int64
	blobFailures.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, BlobPathPrefix) && blobFailures.Add(-1) >= 0 {
			httpError(w, http.StatusServiceUnavailable, "flaky", "injected outage")
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, want := testProfile(t, "a", 1)
	data, _, err := c.Pull(context.Background(), "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("pulled bytes differ after retries")
	}
	// Exactly two injected failures → exactly two retries, then success.
	if st := c.Stats(); st.Retries != 2 || st.BlobFetches != 1 {
		t.Fatalf("stats after flaky pull: %+v", st)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	o, _, _ := newTestOrigin(t, OriginOptions{}, "a@1")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, BlobPathPrefix) {
			httpError(w, http.StatusInternalServerError, "down", "always failing")
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(o *ClientOptions) { o.MaxAttempts = 3 })
	_, _, err := c.Pull(context.Background(), "a", 1)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("want exhaustion error, got %v", err)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("3 attempts = 2 retries, got %+v", st)
	}
}

func TestClientResumesTruncatedBlob(t *testing.T) {
	o, _, _ := newTestOrigin(t, OriginOptions{}, "a@1")
	_, want := testProfile(t, "a", 1)
	half := len(want) / 2
	var truncations atomic.Int64
	truncations.Store(1)
	var sawRange atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, BlobPathPrefix) {
			if rg := r.Header.Get("Range"); rg != "" {
				sawRange.Store(rg)
			}
			if truncations.Add(-1) >= 0 {
				// A complete, well-formed response that is simply missing
				// the tail — as a proxy or dying origin would produce.
				w.Header().Set("Content-Length", fmt.Sprint(half))
				w.WriteHeader(http.StatusOK)
				w.Write(want[:half])
				return
			}
		}
		o.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	data, e, err := c.Pull(context.Background(), "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("resumed blob differs from original")
	}
	// The second attempt resumed from the banked prefix instead of
	// restarting at zero.
	if got, _ := sawRange.Load().(string); got != fmt.Sprintf("bytes=%d-", half) {
		t.Fatalf("resume Range header = %q", got)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("stats after truncated pull: %+v", st)
	}
	// The .part file is gone once the blob verifies.
	if _, err := os.Stat(c.cache.partPath(e.SHA256)); !os.IsNotExist(err) {
		t.Fatal(".part survived a successful pull")
	}
}

func TestClientRejectsCorruptBlobWithoutRetry(t *testing.T) {
	o, _, _ := newTestOrigin(t, OriginOptions{}, "a@1")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, BlobPathPrefix) {
			rec := httptest.NewRecorder()
			o.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			body[len(body)/2] ^= 0x01 // same length, wrong bytes
			w.WriteHeader(rec.Code)
			w.Write(body)
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, _, err := c.Pull(context.Background(), "a", 1)
	if err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Fatalf("want sha256 mismatch, got %v", err)
	}
	// Provably wrong bytes are not retried: re-downloading them cannot
	// help, and the failure is counted.
	if st := c.Stats(); st.Retries != 0 || st.VerifyFailures != 1 || st.BlobFetches != 0 {
		t.Fatalf("stats after corrupt blob: %+v", st)
	}
}

func TestClientRejectsIndexCRCMismatch(t *testing.T) {
	// A hand-built origin whose index lies about the CRC: sha256 and size
	// match the blob, so only the CRC cross-check can catch it.
	_, data := testProfile(t, "a", 1)
	ix := testIndex(t, "a@1")
	ix.Profiles[0].CRC32 = "deadbeef"
	encoded, err := ix.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == IndexPath:
			w.Write(encoded)
		case strings.HasPrefix(r.URL.Path, BlobPathPrefix):
			w.Write(data)
		}
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, _, err = c.Pull(context.Background(), "a", 1)
	if err == nil || !strings.Contains(err.Error(), "crc32") {
		t.Fatalf("want crc32 mismatch, got %v", err)
	}
	if st := c.Stats(); st.VerifyFailures != 1 || st.Retries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientIndexRevalidation(t *testing.T) {
	_, dir, ts := newTestOrigin(t, OriginOptions{}, "a@1")
	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()

	if _, err := c.Index(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Index(ctx); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.IndexFetches != 1 || st.IndexNotModified != 1 {
		t.Fatalf("revalidation stats: %+v", st)
	}
	// Directory change → stale ETag → fresh fetch.
	p, data := testProfile(t, "b", 1)
	if err := profile.WriteFileAtomic(filepath.Join(dir, p.FileName()), data); err != nil {
		t.Fatal(err)
	}
	ix, err := c.Index(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Resolve("b", 1); err != nil {
		t.Fatalf("fresh index missing new profile: %v", err)
	}
	if st := c.Stats(); st.IndexFetches != 2 {
		t.Fatalf("stale-ETag stats: %+v", st)
	}
}

func TestClientOriginDownFallsBackToCache(t *testing.T) {
	o, _, _ := newTestOrigin(t, OriginOptions{}, "a@1")
	down := &atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close() // slam the connection: transport-level failure
			}
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cacheDir := t.TempDir()
	c := newTestClient(t, ts.URL, func(o *ClientOptions) {
		o.CacheDir = cacheDir
		o.MaxAttempts = 2
	})
	ctx := context.Background()
	first, _, err := c.Pull(ctx, "a", 1)
	if err != nil {
		t.Fatal(err)
	}

	down.Store(true)
	// Index and blob both keep working from the cache, and the
	// degradation is visible in the counters.
	if _, err := c.Index(ctx); err != nil {
		t.Fatalf("index with origin down: %v", err)
	}
	again, _, err := c.Pull(ctx, "a", 1)
	if err != nil {
		t.Fatalf("pull with origin down: %v", err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("cached bytes differ")
	}
	if st := c.Stats(); st.IndexFallbacks < 2 || st.BlobCacheHits != 1 {
		t.Fatalf("degraded stats: %+v", st)
	}

	// A fresh process over the same cache dir survives a boot-time
	// outage: the persisted index is loaded and the blob serves from
	// cache.
	c2 := newTestClient(t, ts.URL, func(o *ClientOptions) {
		o.CacheDir = cacheDir
		o.MaxAttempts = 2
	})
	again, _, err = c2.Pull(ctx, "a", 1)
	if err != nil {
		t.Fatalf("restarted pull with origin down: %v", err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("restarted cached bytes differ")
	}
}

func TestClientTrustKeyGatesEverything(t *testing.T) {
	pub, priv := testHubKey(t)
	wrongPub, _ := testHubKey(t)

	// Unsigned origin + trust key → rejected.
	_, _, unsignedTS := newTestOrigin(t, OriginOptions{}, "a@1")
	c := newTestClient(t, unsignedTS.URL, func(o *ClientOptions) { o.TrustedKey = pub })
	if _, err := c.Index(context.Background()); err == nil || !strings.Contains(err.Error(), "unsigned") {
		t.Fatalf("unsigned index accepted: %v", err)
	}

	// Signed origin + matching key → full pull works.
	_, _, signedTS := newTestOrigin(t, OriginOptions{SigningKey: priv}, "a@1")
	c = newTestClient(t, signedTS.URL, func(o *ClientOptions) { o.TrustedKey = pub })
	if _, _, err := c.Pull(context.Background(), "a", 1); err != nil {
		t.Fatalf("signed pull: %v", err)
	}

	// Signed origin + wrong key → rejected, counted.
	c = newTestClient(t, signedTS.URL, func(o *ClientOptions) { o.TrustedKey = wrongPub })
	if _, err := c.Index(context.Background()); err == nil || !strings.Contains(err.Error(), "does not verify") {
		t.Fatalf("wrong-key index accepted: %v", err)
	}
	if st := c.Stats(); st.VerifyFailures != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientRejectsTamperedSignedIndex(t *testing.T) {
	pub, priv := testHubKey(t)
	o, _, _ := newTestOrigin(t, OriginOptions{SigningKey: priv}, "a@1", "b@1")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == IndexPath {
			// Man-in-the-middle: strip entry b@1 from the signed index and
			// re-encode. Structurally valid JSON, dead signature.
			ix, err := o.Index()
			if err != nil {
				httpError(w, 500, "x", "%v", err)
				return
			}
			forged := *ix
			forged.Profiles = forged.Profiles[:1]
			data, _ := forged.Encode()
			w.Write(data)
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(o *ClientOptions) { o.TrustedKey = pub })
	if _, err := c.Index(context.Background()); err == nil || !strings.Contains(err.Error(), "does not verify") {
		t.Fatalf("forged index accepted: %v", err)
	}
}

func TestClientCacheSelfHeals(t *testing.T) {
	_, _, ts := newTestOrigin(t, OriginOptions{}, "a@1")
	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()
	data, e, err := c.Pull(ctx, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-rot the cached blob. The next pull detects the bad hash,
	// treats it as a miss, and re-downloads.
	blobPath := c.cache.blobPath(e.SHA256)
	rotted := append([]byte(nil), data...)
	rotted[10] ^= 0xff
	if err := os.WriteFile(blobPath, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	again, _, err := c.Pull(ctx, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("self-healed blob differs")
	}
	if st := c.Stats(); st.BlobFetches != 2 || st.BlobCacheHits != 0 {
		t.Fatalf("self-heal stats: %+v", st)
	}
}

func TestClientCacheGC(t *testing.T) {
	_, _, ts := newTestOrigin(t, OriginOptions{}, "a@1", "a@2", "a@3", "b@1")
	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()
	for _, ref := range []struct {
		name string
		ver  uint32
	}{{"a", 1}, {"a", 2}, {"a", 3}, {"b", 1}} {
		if _, _, err := c.Pull(ctx, ref.name, ref.ver); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.GC(profile.GCPolicy{MaxVersionsPerName: 1})
	if err != nil {
		t.Fatal(err)
	}
	// a@1 and a@2 refs drop, and their now-unreferenced blobs sweep.
	if len(res.Removed) != 4 {
		t.Fatalf("GC removed %v, want 2 refs + 2 blobs", res.Removed)
	}
	// Evicted versions are gone from cache but re-fetchable on demand.
	if _, _, err := c.Pull(ctx, "a", 3); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.BlobCacheHits != 1 {
		t.Fatalf("post-GC stats: %+v", st)
	}
	before := c.Stats().BlobFetches
	if _, _, err := c.Pull(ctx, "a", 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().BlobFetches; got != before+1 {
		t.Fatal("evicted blob should re-download")
	}
}
