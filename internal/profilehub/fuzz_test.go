package profilehub

import (
	"strings"
	"testing"
)

// FuzzParseIndex hammers the one parser that consumes untrusted remote
// bytes. The invariant is simple: ParseIndex either rejects the input or
// returns an index whose every entry satisfies the documented
// invariants — it must never panic, and it must never hand back a
// half-validated document.
func FuzzParseIndex(f *testing.F) {
	// Seeds: a real encoded index, edge-case JSON shapes, and classic
	// parser-confusion inputs.
	valid := testIndex(f, "a@1", "b@2")
	if data, err := valid.Encode(); err == nil {
		f.Add(data)
	}
	signed := testIndex(f, "a@1")
	_, priv := testHubKey(f)
	signed.Sign(priv)
	if data, err := signed.Encode(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":1,"generated_unix":0,"profiles":[]}`))
	f.Add([]byte(`{"format":1,"profiles":[{"name":"a","version":1,"sha256":"` +
		strings.Repeat("a", 64) + `","size":100,"crc32":"00000000"}]}`))
	f.Add([]byte(`{"format":1,"profiles":null,"sig":"AAAA"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"format":1e999}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ParseIndex(data)
		if err != nil {
			return
		}
		seen := make(map[string]bool)
		for i := range ix.Profiles {
			e := &ix.Profiles[i]
			if verr := validateEntry(e); verr != nil {
				t.Fatalf("accepted index holds invalid entry %d: %v", i, verr)
			}
			if seen[e.Ref()] {
				t.Fatalf("accepted index lists %s twice", e.Ref())
			}
			seen[e.Ref()] = true
		}
		if ix.Format != ProtocolVersion {
			t.Fatalf("accepted index has format %d", ix.Format)
		}
	})
}
