package profilehub

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	privPath := filepath.Join(dir, "hub.key")
	pubPath := filepath.Join(dir, "hub.key.pub")
	if err := WritePrivateKeyFile(privPath, priv); err != nil {
		t.Fatal(err)
	}
	if err := WritePublicKeyFile(pubPath, pub); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(privPath); err != nil || st.Mode().Perm() != 0o600 {
		t.Fatalf("private key mode %v, %v; want 0600", st.Mode().Perm(), err)
	}
	privBack, err := ReadPrivateKeyFile(privPath)
	if err != nil {
		t.Fatal(err)
	}
	pubBack, err := ReadPublicKeyFile(pubPath)
	if err != nil {
		t.Fatal(err)
	}
	if !priv.Equal(privBack) || !pub.Equal(pubBack) {
		t.Fatal("keys did not round trip")
	}
}

func TestKeyFileRejectsWrongType(t *testing.T) {
	dir := t.TempDir()
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	privPath := filepath.Join(dir, "hub.key")
	pubPath := filepath.Join(dir, "hub.key.pub")
	if err := WritePrivateKeyFile(privPath, priv); err != nil {
		t.Fatal(err)
	}
	if err := WritePublicKeyFile(pubPath, pub); err != nil {
		t.Fatal(err)
	}
	// Swapped files must not read as the other kind.
	if _, err := ReadPrivateKeyFile(pubPath); err == nil {
		t.Fatal("public key file read as a private key")
	}
	if _, err := ReadPublicKeyFile(privPath); err == nil {
		t.Fatal("private key file read as a public key")
	}
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("deepn-hub-ed25519-public:!!!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPublicKeyFile(junk); err == nil {
		t.Fatal("invalid base64 key parsed")
	}
}
