package profilehub

import (
	"context"
	"fmt"
	"testing"
)

// benchIndex builds an index with n synthetic entries (distinct names so
// resolution scans the whole catalog).
func benchIndex(b *testing.B, n int) *Index {
	b.Helper()
	refs := make([]string, n)
	for i := range refs {
		refs[i] = fmt.Sprintf("model-%03d@1", i)
	}
	return testIndex(b, refs...)
}

func BenchmarkIndexEncode(b *testing.B) {
	ix := benchIndex(b, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexParse(b *testing.B) {
	ix := benchIndex(b, 64)
	data, err := ix.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseIndex(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexSign(b *testing.B) {
	_, priv := testHubKey(b)
	ix := benchIndex(b, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Sign(priv)
	}
}

func BenchmarkIndexVerify(b *testing.B) {
	pub, priv := testHubKey(b)
	ix := benchIndex(b, 64)
	ix.Sign(priv)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ix.VerifySignature(pub); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobVerify(b *testing.B) {
	ix := testIndex(b, "a@1")
	_, data := testProfile(b, "a", 1)
	c := &Client{}
	e := &ix.Profiles[0]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.verifyBlob(data, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPullCacheHit measures the steady-state cost of the path every
// serving process takes after first pull: index revalidation skipped
// (origin local), cached blob re-hashed and returned.
func BenchmarkPullCacheHit(b *testing.B) {
	_, _, ts := newTestOrigin(b, OriginOptions{}, "a@1")
	c := newTestClient(b, ts.URL, nil)
	ctx := context.Background()
	if _, _, err := c.Pull(ctx, "a", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Pull(ctx, "a", 1); err != nil {
			b.Fatal(err)
		}
	}
}
