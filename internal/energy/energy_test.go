package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestPaperLatencyCalibration reproduces the intro's motivating numbers:
// a 152 KB image upload takes 870 ms (3G), 180 ms (LTE), 95 ms (Wi-Fi).
func TestPaperLatencyCalibration(t *testing.T) {
	cases := []struct {
		link Link
		want time.Duration
	}{
		{ThreeG, 870 * time.Millisecond},
		{LTE, 180 * time.Millisecond},
		{WiFi, 95 * time.Millisecond},
	}
	for _, c := range cases {
		got := c.link.TransferLatency(ReferenceImageBytes)
		if diff := got - c.want; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("%s: latency %v, want %v", c.link.Name, got, c.want)
		}
	}
}

func TestLatencyLinearInBytes(t *testing.T) {
	half := ThreeG.TransferLatency(ReferenceImageBytes / 2)
	full := ThreeG.TransferLatency(ReferenceImageBytes)
	if math.Abs(float64(full)-2*float64(half)) > float64(time.Millisecond) {
		t.Fatalf("latency not linear: half=%v full=%v", half, full)
	}
	if ThreeG.TransferLatency(0) != 0 || ThreeG.TransferLatency(-5) != 0 {
		t.Fatal("non-positive payloads must cost nothing")
	}
}

func TestTransferEnergyIsPowerTimesTime(t *testing.T) {
	e := LTE.TransferEnergy(ReferenceImageBytes)
	want := LTE.RadioPowerW * 0.180
	if math.Abs(e-want) > 1e-6 {
		t.Fatalf("energy %g, want %g", e, want)
	}
	if LTE.TransferEnergy(0) != 0 {
		t.Fatal("zero payload must cost nothing")
	}
}

// TestCommunicationDominatesCompute reproduces the intro's claim: over 3G,
// transmitting the reference image costs far more energy than running a
// mobile-scale DNN inference (~724M MACs for AlexNet).
func TestCommunicationDominatesCompute(t *testing.T) {
	transfer := ThreeG.TransferEnergy(ReferenceImageBytes)
	compute := DefaultCompute().Energy(724_000_000)
	if transfer < compute {
		t.Fatalf("3G transfer %g J below compute %g J — breaks the paper's premise", transfer, compute)
	}
	// And they are within ~one order of magnitude, per "communication
	// energy is comparable with DNN computation energy".
	if transfer > 100*compute {
		t.Fatalf("transfer/compute ratio %.1f implausible", transfer/compute)
	}
}

func TestEnergyPerByteOrdering(t *testing.T) {
	// 3G is the most expensive way to move a byte; Wi-Fi the cheapest.
	if !(ThreeG.EnergyPerByte() > LTE.EnergyPerByte() && LTE.EnergyPerByte() > WiFi.EnergyPerByte()) {
		t.Fatalf("per-byte energy ordering broken: 3G=%g LTE=%g WiFi=%g",
			ThreeG.EnergyPerByte(), LTE.EnergyPerByte(), WiFi.EnergyPerByte())
	}
}

func TestNormalizedPower(t *testing.T) {
	sizes := []SchemeBytes{
		{"original", 1000},
		{"deepn", 286},
		{"same-q4", 900},
	}
	norm, err := NormalizedPower(sizes, "original")
	if err != nil {
		t.Fatal(err)
	}
	if norm["original"] != 1 {
		t.Fatalf("baseline norm %g", norm["original"])
	}
	if math.Abs(norm["deepn"]-0.286) > 1e-9 {
		t.Fatalf("deepn norm %g", norm["deepn"])
	}
}

func TestNormalizedPowerErrors(t *testing.T) {
	if _, err := NormalizedPower([]SchemeBytes{{"a", 10}}, "missing"); err == nil {
		t.Fatal("missing baseline accepted")
	}
	if _, err := NormalizedPower([]SchemeBytes{{"a", 0}}, "a"); err == nil {
		t.Fatal("zero-byte baseline accepted")
	}
}

func TestOffloadReportsAllLinks(t *testing.T) {
	reports := Offload(ReferenceImageBytes)
	if len(reports) != 3 {
		t.Fatalf("%d reports", len(reports))
	}
	if reports[0].Link != "3G" || reports[2].Link != "Wi-Fi" {
		t.Fatalf("order %v", reports)
	}
	if reports[0].Latency <= reports[1].Latency {
		t.Fatal("3G must be slower than LTE")
	}
}

func TestComputeEnergy(t *testing.T) {
	c := Compute{JoulesPerMAC: 2e-9}
	if got := c.Energy(1_000_000); math.Abs(got-2e-3) > 1e-12 {
		t.Fatalf("compute energy %g", got)
	}
	if c.Energy(-1) != 0 {
		t.Fatal("negative MACs must cost nothing")
	}
}

// Property: fewer bytes never cost more energy or time on any link.
func TestPropertyMonotoneCost(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := int64(a%1_000_000), int64(b%1_000_000)
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, l := range Links() {
			if l.TransferEnergy(lo) > l.TransferEnergy(hi) {
				return false
			}
			if l.TransferLatency(lo) > l.TransferLatency(hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
