// Package energy models the data-offloading cost of an edge device, the
// quantity Fig. 9 of the paper reports. Link throughputs are calibrated so
// that uploading the paper's reference 152 KB JPEG takes 870 ms over 3G,
// 180 ms over LTE and 95 ms over Wi-Fi (the Neurosurgeon measurements the
// paper cites), and transfer energy is radio power × air time. DNN compute
// energy is modeled per multiply-accumulate so offloading can be compared
// against on-device inference.
package energy

import (
	"fmt"
	"time"
)

// ReferenceImageBytes is the compressed image size used in the paper's
// latency discussion (152 KB).
const ReferenceImageBytes = 152 * 1024

// Link models one wireless uplink.
type Link struct {
	Name string
	// ThroughputBps is the effective uplink rate in bytes per second.
	ThroughputBps float64
	// RadioPowerW is the radio's active transmit power draw in watts.
	RadioPowerW float64
}

// The three links of the paper's motivating example. Throughput derives
// from the 152 KB / latency calibration; radio powers are representative
// smartphone measurements (3G is slowest and, per byte, hungriest).
var (
	ThreeG = Link{Name: "3G", ThroughputBps: ReferenceImageBytes / 0.870, RadioPowerW: 1.2}
	LTE    = Link{Name: "LTE", ThroughputBps: ReferenceImageBytes / 0.180, RadioPowerW: 1.8}
	WiFi   = Link{Name: "Wi-Fi", ThroughputBps: ReferenceImageBytes / 0.095, RadioPowerW: 0.9}
)

// Links lists the built-in links in the paper's presentation order.
func Links() []Link { return []Link{ThreeG, LTE, WiFi} }

// TransferLatency returns the air time for a payload.
func (l Link) TransferLatency(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	sec := float64(bytes) / l.ThroughputBps
	return time.Duration(sec * float64(time.Second))
}

// TransferEnergy returns the radio energy in joules for a payload.
func (l Link) TransferEnergy(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.RadioPowerW * float64(bytes) / l.ThroughputBps
}

// EnergyPerByte returns the link's marginal energy cost in joules/byte.
func (l Link) EnergyPerByte() float64 { return l.RadioPowerW / l.ThroughputBps }

// Compute models on-device DNN arithmetic energy.
type Compute struct {
	// JoulesPerMAC is the energy of one multiply-accumulate including
	// memory traffic; ~1 nJ is representative of a mobile-class SoC.
	JoulesPerMAC float64
}

// DefaultCompute returns the 1 nJ/MAC mobile-SoC model.
func DefaultCompute() Compute { return Compute{JoulesPerMAC: 1e-9} }

// Energy returns the joules to execute the given MAC count.
func (c Compute) Energy(macs int64) float64 {
	if macs <= 0 {
		return 0
	}
	return c.JoulesPerMAC * float64(macs)
}

// SchemeBytes records the total compressed dataset size produced by one
// compression scheme.
type SchemeBytes struct {
	Scheme string
	Bytes  int64
}

// NormalizedPower computes per-scheme offloading power relative to the
// named baseline — the Fig. 9 presentation. Transfer energy is linear in
// bytes for a fixed link, so the normalized figure is link-independent.
func NormalizedPower(sizes []SchemeBytes, baseline string) (map[string]float64, error) {
	var base int64 = -1
	for _, s := range sizes {
		if s.Scheme == baseline {
			base = s.Bytes
		}
	}
	if base < 0 {
		return nil, fmt.Errorf("energy: baseline scheme %q not in sizes", baseline)
	}
	if base == 0 {
		return nil, fmt.Errorf("energy: baseline scheme %q has zero bytes", baseline)
	}
	out := make(map[string]float64, len(sizes))
	for _, s := range sizes {
		out[s.Scheme] = float64(s.Bytes) / float64(base)
	}
	return out, nil
}

// OffloadReport is one row of the edge-offloading comparison: what it
// costs to ship a payload over each link.
type OffloadReport struct {
	Link    string
	Latency time.Duration
	Joules  float64
}

// Offload evaluates a payload against every built-in link, sorted by the
// paper's order.
func Offload(bytes int64) []OffloadReport {
	links := Links()
	out := make([]OffloadReport, 0, len(links))
	for _, l := range links {
		out = append(out, OffloadReport{
			Link:    l.Name,
			Latency: l.TransferLatency(bytes),
			Joules:  l.TransferEnergy(bytes),
		})
	}
	return out
}
