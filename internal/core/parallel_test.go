package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/dataset"
)

func calibrationDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 12, 1
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return train
}

// TestParallelCalibrateMatchesSequential is the acceptance bar for the
// parallel statistics pass: whatever the worker count, the calibrated
// quantization tables must be byte-identical to the single-threaded
// flow's, and repeated runs at the same worker count must agree
// (scheduling independence).
func TestParallelCalibrateMatchesSequential(t *testing.T) {
	ds := calibrationDataset(t)
	seq, err := Calibrate(ds, CalibrateOptions{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, runtime.GOMAXPROCS(0), 64} {
		par, err := Calibrate(ds, CalibrateOptions{Chroma: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.LumaTable != seq.LumaTable {
			t.Fatalf("workers=%d: luma table differs from sequential\nseq:\n%spar:\n%s",
				workers, seq.LumaTable.String(), par.LumaTable.String())
		}
		if par.ChromaTable != seq.ChromaTable {
			t.Fatalf("workers=%d: chroma table differs from sequential", workers)
		}
		if par.SampledCount != seq.SampledCount {
			t.Fatalf("workers=%d: sampled %d images, sequential sampled %d", workers, par.SampledCount, seq.SampledCount)
		}
		again, err := Calibrate(ds, CalibrateOptions{Chroma: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if again.LumaTable != par.LumaTable || again.Stats.Std != par.Stats.Std {
			t.Fatalf("workers=%d: repeated parallel calibration is not deterministic", workers)
		}
	}
}

// TestParallelCalibrateConcurrentCallers runs several parallel
// calibrations at once over the same dataset; meant for -race.
func TestParallelCalibrateConcurrentCallers(t *testing.T) {
	ds := calibrationDataset(t)
	ref, err := Calibrate(ds, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fw, err := Calibrate(ds, CalibrateOptions{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if fw.LumaTable != ref.LumaTable {
				t.Error("concurrent parallel calibration diverged from reference")
			}
		}()
	}
	wg.Wait()
}
