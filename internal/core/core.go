// Package core implements the DeepN-JPEG framework itself — the paper's
// primary contribution. It wires the pipeline of Fig. 4 end to end:
//
//  1. sample the labeled dataset (Algorithm 1, freqstat.StratifiedIndices),
//  2. characterize per-band DCT coefficient statistics (freqstat),
//  3. segment bands by δ magnitude and fit the piece-wise linear mapping
//     (plm), and
//  4. emit a DNN-favorable quantization table consumed by the from-scratch
//     baseline JPEG codec (jpegcodec).
//
// It also defines the compression Schemes the evaluation compares —
// Original (QF 100), JPEG at a quality factor, RM-HF, SAME-Q and
// DeepN-JPEG — together with dataset transcoding and compression-ratio
// accounting used by every experiment.
package core

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/dct"
	"repro/internal/freqstat"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/plm"
	"repro/internal/qtable"
)

// CalibrateOptions controls the DeepN-JPEG design flow.
type CalibrateOptions struct {
	// Anchors are the sensitivity-sweep anchor points (Fig. 5/6). The zero
	// value uses the paper's anchors.
	Anchors plm.Anchors
	// SampleEvery is Algorithm 1's per-class sampling interval k; ≤1 uses
	// every image.
	SampleEvery int
	// UsePaperParams bypasses fitting and applies the published ImageNet
	// constants directly (the "no calibration" ablation).
	UsePaperParams bool
	// Chroma additionally calibrates a chroma table from the Cb/Cr planes;
	// otherwise the Annex-K chroma table scaled to QF 95 is used.
	Chroma bool
	// PositionBased switches band segmentation to the zig-zag position
	// baseline (the Fig. 5 comparison); thresholds then come from the δ
	// values at the positional boundaries.
	PositionBased bool
	// Workers fans the frequency-statistics accumulation across a worker
	// pool. Values ≤ 1 keep the single-threaded path. Each worker owns a
	// deterministic contiguous slice of the sampled images and the partial
	// accumulators merge in worker order, so a given worker count always
	// produces the same result regardless of goroutine scheduling.
	Workers int
	// Transform selects the block-transform engine the calibrated scheme
	// encodes with (dct.TransformNaive by default, dct.TransformAAN for
	// the fast path). Calibration statistics always use the naive engine
	// so tables stay bit-identical across engine choices.
	Transform dct.Transform
}

// Framework is a calibrated DeepN-JPEG instance.
type Framework struct {
	Params       plm.Params
	Seg          freqstat.Segmentation
	Stats        *freqstat.Stats
	ChromaStats  *freqstat.Stats // nil unless calibrated
	LumaTable    qtable.Table
	ChromaTable  qtable.Table
	SampledCount int           // images used for calibration
	Transform    dct.Transform // block-transform engine for Scheme()

	// scaled caches the transform-folded forward quantization divisors of
	// LumaTable/ChromaTable under Transform, built once by Calibrate or
	// Restore and attached to every Scheme the framework hands out — the
	// encoder then never derives them per image (let alone per block).
	// The cache carries the inputs it was built from and the encoder
	// verifies them, so a framework whose exported fields were mutated
	// after construction degrades to per-call derivation, never to
	// different streams.
	scaled *jpegcodec.ScaledTables
}

// Calibrate runs the full design flow on a labeled dataset.
func Calibrate(ds *dataset.Dataset, opts CalibrateOptions) (*Framework, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if !opts.Transform.Valid() {
		return nil, fmt.Errorf("core: unknown transform engine %d", opts.Transform)
	}
	if opts.Anchors == (plm.Anchors{}) {
		opts.Anchors = plm.PaperAnchors()
	}
	idx := freqstat.StratifiedIndices(ds.Labels, opts.SampleEvery)
	if len(idx) == 0 {
		return nil, fmt.Errorf("core: sampling interval %d selected no images", opts.SampleEvery)
	}
	acc, chromaAcc := accumulateStats(ds, idx, opts.Chroma, opts.Workers)
	stats, err := acc.Stats()
	if err != nil {
		return nil, fmt.Errorf("core: luma statistics: %w", err)
	}

	f := &Framework{Stats: stats, SampledCount: len(idx), Transform: opts.Transform}
	if opts.PositionBased {
		f.Seg = freqstat.SegmentByPosition()
		// Positional segmentation has no natural δ thresholds; take them
		// from the δ values at the positional class boundaries.
		f.Seg.T1 = stats.Std[f.Seg.ByRank[freqstat.LFCount+freqstat.MFCount]]
		f.Seg.T2 = stats.Std[f.Seg.ByRank[freqstat.LFCount]]
	} else {
		f.Seg = freqstat.SegmentByMagnitude(stats)
	}

	if opts.UsePaperParams {
		f.Params = plm.PaperImageNet()
	} else {
		p, err := plm.Fit(opts.Anchors, f.Seg.T1, f.Seg.T2, stats.MaxStd())
		if err != nil {
			return nil, fmt.Errorf("core: fitting PLM: %w", err)
		}
		f.Params = p
	}
	f.LumaTable, err = f.Params.Table(stats)
	if err != nil {
		return nil, err
	}

	if opts.Chroma {
		cstats, err := chromaAcc.Stats()
		if err != nil {
			return nil, fmt.Errorf("core: chroma statistics: %w", err)
		}
		f.ChromaStats = cstats
		f.ChromaTable, err = f.Params.Table(cstats)
		if err != nil {
			return nil, err
		}
	} else {
		f.ChromaTable = qtable.MustScale(qtable.StdChrominance, 95)
	}
	f.scaled = jpegcodec.PrecomputeScaled(f.LumaTable, f.ChromaTable, f.Transform)
	return f, nil
}

// Restore rebuilds a Framework from persisted calibration state — the
// statistics, PLM parameters and tables a calibration profile carries —
// without rerunning the design flow. The segmentation is recomputed from
// the statistics by δ magnitude (the paper's proposal and the only
// segmentation persisted profiles are written from); everything the
// encode, decode and requantize paths consume (tables, transform,
// statistics) is taken verbatim, so a restored Framework encodes
// byte-identically to the one it was saved from.
func Restore(params plm.Params, stats, chromaStats *freqstat.Stats, luma, chroma qtable.Table, sampled int, transform dct.Transform) (*Framework, error) {
	if stats == nil {
		return nil, fmt.Errorf("core: Restore needs luma statistics")
	}
	if !transform.Valid() {
		return nil, fmt.Errorf("core: unknown transform engine %d", transform)
	}
	if err := luma.Validate(); err != nil {
		return nil, fmt.Errorf("core: restored luma table: %w", err)
	}
	if err := chroma.Validate(); err != nil {
		return nil, fmt.Errorf("core: restored chroma table: %w", err)
	}
	return &Framework{
		Params:       params,
		Seg:          freqstat.SegmentByMagnitude(stats),
		Stats:        stats,
		ChromaStats:  chromaStats,
		LumaTable:    luma,
		ChromaTable:  chroma,
		SampledCount: sampled,
		Transform:    transform,
		scaled:       jpegcodec.PrecomputeScaled(luma, chroma, transform),
	}, nil
}

// accumulateStats folds the sampled images into per-band accumulators,
// fanning the work across workers when more than one is requested. Each
// worker owns a contiguous chunk of idx fixed by index arithmetic, and
// the partial accumulators merge in worker order, so the outcome depends
// only on the worker count — never on goroutine scheduling.
func accumulateStats(ds *dataset.Dataset, idx []int, chroma bool, workers int) (luma, chromaAcc *freqstat.Accumulator) {
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		luma, chromaAcc = freqstat.NewAccumulator(), freqstat.NewAccumulator()
		for _, i := range idx {
			luma.AddRGBLuma(ds.Images[i])
			if chroma {
				chromaAcc.AddRGBChroma(ds.Images[i])
			}
		}
		return luma, chromaAcc
	}
	lumaParts := make([]*freqstat.Accumulator, workers)
	chromaParts := make([]*freqstat.Accumulator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lumaParts[w] = freqstat.NewAccumulator()
		chromaParts[w] = freqstat.NewAccumulator()
		lo, hi := w*len(idx)/workers, (w+1)*len(idx)/workers
		wg.Add(1)
		go func(la, ca *freqstat.Accumulator, chunk []int) {
			defer wg.Done()
			for _, i := range chunk {
				la.AddRGBLuma(ds.Images[i])
				if chroma {
					ca.AddRGBChroma(ds.Images[i])
				}
			}
		}(lumaParts[w], chromaParts[w], idx[lo:hi])
	}
	wg.Wait()
	luma, chromaAcc = lumaParts[0], chromaParts[0]
	for w := 1; w < workers; w++ {
		luma.Merge(lumaParts[w])
		chromaAcc.Merge(chromaParts[w])
	}
	return luma, chromaAcc
}

// Scheme names one compression configuration of the evaluation.
type Scheme struct {
	Name string
	Opts jpegcodec.Options
}

// SchemeOriginal is the paper's reference point: JPEG at QF 100 (CR = 1).
func SchemeOriginal() Scheme {
	return Scheme{Name: "original", Opts: jpegcodec.Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 100),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 100),
	}}
}

// SchemeJPEG is standard JPEG at a quality factor.
func SchemeJPEG(qf int) Scheme {
	return Scheme{Name: fmt.Sprintf("jpeg-qf%d", qf), Opts: jpegcodec.Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, qf),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, qf),
	}}
}

// SchemeRMHF removes the top-n zig-zag bands from the QF-100 table.
func SchemeRMHF(n int) Scheme {
	tbl, mask := qtable.RMHF(n)
	return Scheme{Name: fmt.Sprintf("rm-hf%d", n), Opts: jpegcodec.Options{
		LumaTable:   tbl,
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 100),
		ZeroMask:    &mask,
	}}
}

// SchemeSameQ quantizes every band with the same step.
func SchemeSameQ(q int) Scheme {
	return Scheme{Name: fmt.Sprintf("same-q%d", q), Opts: jpegcodec.Options{
		LumaTable:   qtable.Uniform(q),
		ChromaTable: qtable.Uniform(q),
	}}
}

// Scheme returns the calibrated DeepN-JPEG scheme. Its Options carry the
// framework's cached transform-folded divisors, so encodes under the
// scheme skip per-call scaled-table derivation as well as the per-block
// descale pass.
func (f *Framework) Scheme() Scheme {
	return Scheme{Name: "deepn-jpeg", Opts: jpegcodec.Options{
		LumaTable:   f.LumaTable,
		ChromaTable: f.ChromaTable,
		Transform:   f.Transform,
		Scaled:      f.scaled,
	}}
}

// EncodeGray compresses a grayscale image under the scheme.
func (s Scheme) EncodeGray(img *imgutil.Gray) ([]byte, error) {
	var buf bytes.Buffer
	opts := s.Opts
	if err := jpegcodec.EncodeGray(&buf, img, &opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeRGB compresses a color image under the scheme.
func (s Scheme) EncodeRGB(img *imgutil.RGB) ([]byte, error) {
	var buf bytes.Buffer
	opts := s.Opts
	if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TranscodeResult is a dataset pushed through a compress–decompress round
// trip, with size accounting for compression-ratio and energy analyses.
type TranscodeResult struct {
	Dataset    *dataset.Dataset
	TotalBytes int64
}

// Transcode compresses and decompresses every image of a dataset under a
// scheme. gray encodes only the luma plane (faster; used by the quick
// experiment profiles), otherwise full color.
func Transcode(ds *dataset.Dataset, s Scheme, gray bool) (*TranscodeResult, error) {
	var total int64
	out, err := ds.Map(func(im *imgutil.RGB) (*imgutil.RGB, error) {
		var data []byte
		var err error
		if gray {
			data, err = s.EncodeGray(im.ToGray())
		} else {
			data, err = s.EncodeRGB(im)
		}
		if err != nil {
			return nil, err
		}
		total += int64(len(data))
		dec, err := jpegcodec.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return dec.RGB(), nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: transcoding with %s: %w", s.Name, err)
	}
	return &TranscodeResult{Dataset: out, TotalBytes: total}, nil
}

// CompressedSize returns the total bytes of the dataset under a scheme
// without decoding (for size-only sweeps).
func CompressedSize(ds *dataset.Dataset, s Scheme, gray bool) (int64, error) {
	var total int64
	for i, im := range ds.Images {
		var data []byte
		var err error
		if gray {
			data, err = s.EncodeGray(im.ToGray())
		} else {
			data, err = s.EncodeRGB(im)
		}
		if err != nil {
			return 0, fmt.Errorf("core: sizing image %d with %s: %w", i, s.Name, err)
		}
		total += int64(len(data))
	}
	return total, nil
}

// CompressionRatio is original size ÷ scheme size, the paper's CR metric.
func CompressionRatio(originalBytes, schemeBytes int64) float64 {
	if schemeBytes <= 0 {
		return 0
	}
	return float64(originalBytes) / float64(schemeBytes)
}

// RemoveHFComponents reproduces the Fig. 3 manipulation: per 8×8 block,
// forward DCT, zero the top-n zig-zag bands, inverse DCT — no
// quantization, so the only change is the removed high-frequency content.
func RemoveHFComponents(img *imgutil.Gray, n int) *imgutil.Gray {
	mask := qtable.TopZigZag(n)
	out := img.Clone()
	grid := imgutil.GridFor(img.W, img.H)
	var tile [64]uint8
	var blk dct.Block
	for by := 0; by < grid.BlocksY; by++ {
		for bx := 0; bx < grid.BlocksX; bx++ {
			imgutil.ExtractBlock(img.Pix, img.W, img.H, bx, by, &tile)
			dct.LevelShift(tile[:], &blk)
			dct.Forward(&blk)
			for i := 0; i < 64; i++ {
				if mask[i] {
					blk[i] = 0
				}
			}
			dct.Inverse(&blk)
			dct.LevelUnshift(&blk, tile[:])
			imgutil.StoreBlock(out.Pix, img.W, img.H, bx, by, &tile)
		}
	}
	return out
}

// RemoveHFComponentsRGB applies RemoveHFComponents to each channel.
func RemoveHFComponentsRGB(img *imgutil.RGB, n int) *imgutil.RGB {
	out := imgutil.NewRGB(img.W, img.H)
	for ch := 0; ch < 3; ch++ {
		plane := imgutil.NewGray(img.W, img.H)
		for i := 0; i < img.W*img.H; i++ {
			plane.Pix[i] = img.Pix[3*i+ch]
		}
		filtered := RemoveHFComponents(plane, n)
		for i := 0; i < img.W*img.H; i++ {
			out.Pix[3*i+ch] = filtered.Pix[i]
		}
	}
	return out
}
