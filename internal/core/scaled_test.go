package core

// Tests for the framework's scaled-table cache: the transform-folded
// quantization divisors must be built exactly once per Framework and
// shared by every Scheme — never rebuilt per image or per block — while
// a Framework whose exported fields were mutated after construction must
// fall back to correct streams rather than serve the stale cache.

import (
	"bytes"
	"testing"

	"repro/internal/dct"
	"repro/internal/jpegcodec"
)

func TestSchemeReusesScaledTableCache(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{Transform: dct.TransformAAN})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := f.Scheme(), f.Scheme()
	if s1.Opts.Scaled == nil {
		t.Fatal("calibrated framework hands out schemes without the scaled-table cache")
	}
	if s1.Opts.Scaled != s2.Opts.Scaled {
		t.Fatal("Scheme rebuilt the scaled tables instead of sharing the per-framework cache")
	}
	// Scheme construction itself must stay allocation-free: the cache is
	// built once at calibration, not per scheme (and certainly not per
	// image or block downstream).
	if allocs := testing.AllocsPerRun(100, func() { _ = f.Scheme() }); allocs > 0 {
		t.Fatalf("Scheme makes %.1f allocs/op, want 0 (scaled tables rebuilt per call?)", allocs)
	}
}

func TestRestoredFrameworkCarriesScaledCache(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{Transform: dct.TransformAAN})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(f.Params, f.Stats, nil, f.LumaTable, f.ChromaTable, f.SampledCount, f.Transform)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme().Opts.Scaled == nil {
		t.Fatal("restored framework lacks the scaled-table cache")
	}
	if r.Scheme().Opts.Scaled != r.Scheme().Opts.Scaled {
		t.Fatal("restored framework rebuilds scaled tables per scheme")
	}
}

// TestMutatedFrameworkFallsBackToFreshTables pins the stale-cache guard
// end to end: copying a framework and switching its engine (what the
// server tests do to flip a running server to AAN) must produce exactly
// the stream a cache-less encode under the new engine produces.
func TestMutatedFrameworkFallsBackToFreshTables(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutated := *f
	mutated.Transform = dct.TransformAAN

	img := ds.Images[0]
	got, err := mutated.Scheme().EncodeRGB(img)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	opts := jpegcodec.Options{
		LumaTable:   f.LumaTable,
		ChromaTable: f.ChromaTable,
		Transform:   dct.TransformAAN,
	}
	if err := jpegcodec.EncodeRGB(&want, img, &opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("mutated framework encoded through its stale scaled-table cache")
	}
}
