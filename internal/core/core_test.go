package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/freqstat"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/plm"
	"repro/internal/qtable"
)

func quickDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 10, 2
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return train
}

func TestCalibrateProducesValidTable(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.LumaTable.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := f.ChromaTable.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.SampledCount != ds.Len() {
		t.Fatalf("sampled %d of %d", f.SampledCount, ds.Len())
	}
	// The DeepN table must protect the energetic bands: the finest steps
	// go to LF bands, the coarsest to HF.
	var lfMean, hfMean float64
	var lfN, hfN int
	for i := range f.LumaTable {
		switch f.Seg.Class[i] {
		case freqstat.LF:
			lfMean += float64(f.LumaTable[i])
			lfN++
		case freqstat.HF:
			hfMean += float64(f.LumaTable[i])
			hfN++
		}
	}
	if lfMean/float64(lfN) >= hfMean/float64(hfN) {
		t.Fatalf("LF mean step %.1f ≥ HF mean step %.1f", lfMean/float64(lfN), hfMean/float64(hfN))
	}
}

func TestCalibrateSampling(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{SampleEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.SampledCount != ds.Len()/2 {
		t.Fatalf("sampled %d, want %d", f.SampledCount, ds.Len()/2)
	}
}

func TestCalibratePaperParams(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{UsePaperParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Params != plm.PaperImageNet() {
		t.Fatalf("params %+v", f.Params)
	}
}

func TestCalibrateChroma(t *testing.T) {
	cfg := dataset.Quick()
	cfg.Color = true
	cfg.TrainPerClass, cfg.TestPerClass = 8, 2
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Calibrate(train, CalibrateOptions{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.ChromaStats == nil {
		t.Fatal("chroma stats missing")
	}
	if err := f.ChromaTable.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibratePositionBased(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{PositionBased: true})
	if err != nil {
		t.Fatal(err)
	}
	// Positional segmentation puts DC in LF regardless of statistics.
	if f.Seg.Class[0] != freqstat.LF {
		t.Fatal("position-based DC not LF")
	}
}

func TestCalibrateEmptyDataset(t *testing.T) {
	if _, err := Calibrate(&dataset.Dataset{}, CalibrateOptions{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestSchemes(t *testing.T) {
	orig := SchemeOriginal()
	if orig.Opts.LumaTable[0] != 1 {
		t.Fatal("original scheme must be QF 100")
	}
	j50 := SchemeJPEG(50)
	if j50.Opts.LumaTable != qtable.StdLuminance {
		t.Fatal("QF 50 must be the Annex-K table")
	}
	rm, _ := qtable.RMHF(3)
	rmhf := SchemeRMHF(3)
	if rmhf.Opts.LumaTable != rm || rmhf.Opts.ZeroMask == nil || rmhf.Opts.ZeroMask.Count() != 3 {
		t.Fatal("RM-HF scheme wrong")
	}
	sq := SchemeSameQ(8)
	if sq.Opts.LumaTable != qtable.Uniform(8) {
		t.Fatal("SAME-Q scheme wrong")
	}
	if orig.Name != "original" || j50.Name != "jpeg-qf50" || rmhf.Name != "rm-hf3" || sq.Name != "same-q8" {
		t.Fatalf("scheme names: %s %s %s %s", orig.Name, j50.Name, rmhf.Name, sq.Name)
	}
}

func TestTranscodePreservesLabelsAndCountsBytes(t *testing.T) {
	ds := quickDataset(t)
	res, err := Transcode(ds, SchemeOriginal(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Len() != ds.Len() {
		t.Fatalf("transcoded %d of %d", res.Dataset.Len(), ds.Len())
	}
	for i := range ds.Labels {
		if res.Dataset.Labels[i] != ds.Labels[i] {
			t.Fatal("labels scrambled")
		}
	}
	if res.TotalBytes <= 0 {
		t.Fatal("no bytes counted")
	}
	// QF-100 gray transcode should be nearly lossless.
	psnr, err := imgutil.PSNR(ds.Images[0].ToGray().Pix, res.Dataset.Images[0].ToGray().Pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 45 {
		t.Fatalf("QF-100 transcode PSNR %.1f", psnr)
	}
}

func TestDeepNCompressionBeatsOriginal(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	origSize, err := CompressedSize(ds, SchemeOriginal(), true)
	if err != nil {
		t.Fatal(err)
	}
	deepSize, err := CompressedSize(ds, f.Scheme(), true)
	if err != nil {
		t.Fatal(err)
	}
	cr := CompressionRatio(origSize, deepSize)
	if cr < 2 {
		t.Fatalf("DeepN-JPEG CR = %.2f, want ≥ 2 over QF-100", cr)
	}
}

func TestCompressionRatio(t *testing.T) {
	if CompressionRatio(1000, 250) != 4 {
		t.Fatal("CR arithmetic wrong")
	}
	if CompressionRatio(1000, 0) != 0 {
		t.Fatal("zero denominator must yield 0")
	}
}

func TestSchemeEncodeDecodableByCodec(t *testing.T) {
	ds := quickDataset(t)
	f, err := Calibrate(ds, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Scheme().EncodeRGB(ds.Images[0])
	if err != nil {
		t.Fatal(err)
	}
	dec, err := jpegcodec.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The DQT in the stream must be the calibrated table.
	if dec.QuantTables[0] != f.LumaTable {
		t.Fatal("calibrated table not embedded in stream")
	}
}

func TestRemoveHFComponents(t *testing.T) {
	ds := quickDataset(t)
	img := ds.Images[0].ToGray()
	out := RemoveHFComponents(img, 6)
	if out.W != img.W || out.H != img.H {
		t.Fatal("dimensions changed")
	}
	// Removing nothing is identity (modulo rounding in DCT round trip).
	same := RemoveHFComponents(img, 0)
	psnr, err := imgutil.PSNR(img.Pix, same.Pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 48 {
		t.Fatalf("n=0 should be near-identity, PSNR %.1f", psnr)
	}
	// Removing 6 HF bands changes pixels but only subtly (the paper's
	// "indistinguishable by human eyes").
	psnr6, err := imgutil.PSNR(img.Pix, out.Pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr6 >= psnr {
		t.Fatal("removing bands did not change the image")
	}
	if psnr6 < 20 {
		t.Fatalf("removing 6 HF bands destroyed the image: PSNR %.1f", psnr6)
	}
	// Verify the bands are actually gone: re-analyze the filtered image.
	acc := freqstat.NewAccumulator()
	acc.AddGray(out)
	stats, err := acc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	mask := qtable.TopZigZag(6)
	for band := 0; band < 64; band++ {
		if mask[band] && stats.Std[band] > 0.51 {
			t.Fatalf("band %d still has σ = %.2f after removal", band, stats.Std[band])
		}
	}
}

func TestRemoveHFComponentsRGB(t *testing.T) {
	cfg := dataset.Quick()
	cfg.Color = true
	cfg.TrainPerClass, cfg.TestPerClass = 2, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := RemoveHFComponentsRGB(train.Images[0], 9)
	if out.W != train.Images[0].W {
		t.Fatal("dimensions changed")
	}
	if bytes.Equal(out.Pix, train.Images[0].Pix) {
		t.Fatal("no change applied")
	}
}
