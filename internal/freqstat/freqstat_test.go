package freqstat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dct"
	"repro/internal/imgutil"
)

func TestAccumulatorNeedsTwoBlocks(t *testing.T) {
	a := NewAccumulator()
	if _, err := a.Stats(); err == nil {
		t.Fatal("empty accumulator produced stats")
	}
	var b dct.Block
	a.AddBlock(&b)
	if _, err := a.Stats(); err == nil {
		t.Fatal("single block produced stats")
	}
	a.AddBlock(&b)
	if _, err := a.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordMatchesDirect cross-checks the streaming moments against a
// two-pass computation.
func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 500
	blocks := make([]dct.Block, n)
	for i := range blocks {
		for j := range blocks[i] {
			blocks[i][j] = rng.NormFloat64() * float64(j+1)
		}
	}
	a := NewAccumulator()
	for i := range blocks {
		a.AddBlock(&blocks[i])
	}
	s, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 64; j++ {
		mean := 0.0
		for i := range blocks {
			mean += blocks[i][j]
		}
		mean /= n
		varSum := 0.0
		for i := range blocks {
			d := blocks[i][j] - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum / (n - 1))
		if math.Abs(s.Mean[j]-mean) > 1e-9 || math.Abs(s.Std[j]-std) > 1e-9 {
			t.Fatalf("band %d: welford (%g,%g) vs direct (%g,%g)", j, s.Mean[j], s.Std[j], mean, std)
		}
	}
	if s.Blocks != n {
		t.Fatalf("Blocks = %d", s.Blocks)
	}
}

func TestMinMaxTracked(t *testing.T) {
	a := NewAccumulator()
	var b dct.Block
	b[0] = -7
	a.AddBlock(&b)
	b[0] = 11
	a.AddBlock(&b)
	s, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Min[0] != -7 || s.Max[0] != 11 {
		t.Fatalf("min/max = %g/%g", s.Min[0], s.Max[0])
	}
}

// TestFlatPlaneHasZeroACStd: constant images put all energy in DC, so AC
// bands must show zero variance and DC zero variance too (all blocks
// identical).
func TestFlatPlaneHasZeroACStd(t *testing.T) {
	g := imgutil.NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = 180
	}
	a := NewAccumulator()
	a.AddGray(g)
	s, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if s.Std[i] != 0 {
			t.Fatalf("band %d std = %g, want 0", i, s.Std[i])
		}
	}
	if math.Abs(s.Mean[0]-(180-128)*8) > 1e-9 {
		t.Fatalf("DC mean = %g", s.Mean[0])
	}
}

// TestSinusoidConcentratesEnergy: a horizontal sinusoid at basis frequency
// u=2 must put its variance in band (u=2, v=0) and nowhere else
// significant.
func TestSinusoidConcentratesEnergy(t *testing.T) {
	g := imgutil.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			phase := float64(2*(x%8)+1) * 2 * math.Pi / 16 // cos((2x+1)·2π/16)
			g.Set(x, y, uint8(128+80*math.Cos(phase)))
		}
	}
	a := NewAccumulator()
	a.AddGray(g)
	s, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Mean magnitude at band (v=0,u=2), natural index 2, should dominate.
	target := math.Abs(s.Mean[2])
	for i := 1; i < 64; i++ {
		if i == 2 {
			continue
		}
		if math.Abs(s.Mean[i]) > target/4 {
			t.Fatalf("band %d mean %g rivals target band %g", i, s.Mean[i], target)
		}
	}
	if target < 100 {
		t.Fatalf("target band mean magnitude %g too small", target)
	}
}

func TestAddRGBLumaAndChroma(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := imgutil.NewRGB(16, 16)
	rng.Read(im.Pix)
	luma := NewAccumulator()
	luma.AddRGBLuma(im)
	if luma.Blocks() != 4 {
		t.Fatalf("luma blocks = %d, want 4", luma.Blocks())
	}
	chroma := NewAccumulator()
	chroma.AddRGBChroma(im)
	if chroma.Blocks() != 8 {
		t.Fatalf("chroma blocks = %d, want 8 (both planes)", chroma.Blocks())
	}
}

func TestLaplaceScale(t *testing.T) {
	s := &Stats{}
	s.Std[5] = math.Sqrt2
	if got := s.LaplaceScale(5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("LaplaceScale = %g, want 1", got)
	}
}

func TestMaxStd(t *testing.T) {
	s := &Stats{}
	s.Std[17] = 42
	s.Std[3] = 41
	if got := s.MaxStd(); got != 42 {
		t.Fatalf("MaxStd = %g", got)
	}
}

func TestSegmentByMagnitude(t *testing.T) {
	s := &Stats{}
	for i := 0; i < 64; i++ {
		s.Std[i] = float64(i) // band 63 most important
	}
	seg := SegmentByMagnitude(s)
	// Band 63 has the largest δ → rank 0 → LF.
	if seg.Rank[63] != 0 || seg.Class[63] != LF {
		t.Fatalf("band 63: rank %d class %v", seg.Rank[63], seg.Class[63])
	}
	// Band 0 has the smallest δ → rank 63 → HF.
	if seg.Rank[0] != 63 || seg.Class[0] != HF {
		t.Fatalf("band 0: rank %d class %v", seg.Rank[0], seg.Class[0])
	}
	// Class sizes must be 6/22/36.
	counts := map[Band]int{}
	for _, c := range seg.Class {
		counts[c]++
	}
	if counts[LF] != 6 || counts[MF] != 22 || counts[HF] != 36 {
		t.Fatalf("class sizes %v", counts)
	}
	// Thresholds: T2 = largest MF δ = 57; T1 = largest HF δ = 35.
	if seg.T2 != 57 || seg.T1 != 35 {
		t.Fatalf("T1=%g T2=%g, want 35/57", seg.T1, seg.T2)
	}
	// ByRank and Rank must be inverse permutations.
	for r := 0; r < 64; r++ {
		if seg.Rank[seg.ByRank[r]] != r {
			t.Fatalf("rank/byrank inconsistent at %d", r)
		}
	}
}

func TestSegmentByPosition(t *testing.T) {
	seg := SegmentByPosition()
	// DC is zig-zag position 0 → LF.
	if seg.Class[0] != LF {
		t.Fatal("DC not LF in position-based segmentation")
	}
	// Highest zig-zag position (natural 63) → HF.
	if seg.Class[63] != HF {
		t.Fatal("band 63 not HF")
	}
	counts := map[Band]int{}
	for _, c := range seg.Class {
		counts[c]++
	}
	if counts[LF] != 6 || counts[MF] != 22 || counts[HF] != 36 {
		t.Fatalf("class sizes %v", counts)
	}
}

// Property: magnitude segmentation classes respect the δ ordering — every
// LF band has δ ≥ every MF band, which has δ ≥ every HF band.
func TestPropertySegmentationOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Stats{}
		for i := range s.Std {
			s.Std[i] = rng.Float64() * 100
		}
		seg := SegmentByMagnitude(s)
		minLF, maxMF := math.Inf(1), math.Inf(-1)
		minMF, maxHF := math.Inf(1), math.Inf(-1)
		for i, c := range seg.Class {
			switch c {
			case LF:
				minLF = math.Min(minLF, s.Std[i])
			case MF:
				minMF = math.Min(minMF, s.Std[i])
				maxMF = math.Max(maxMF, s.Std[i])
			case HF:
				maxHF = math.Max(maxHF, s.Std[i])
			}
		}
		return minLF >= maxMF && minMF >= maxHF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedIndices(t *testing.T) {
	// Three classes interleaved; k=2 keeps every 2nd image per class.
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	got := StratifiedIndices(labels, 2)
	// Class 0 appears at 0,3,6,9 → keep 3 and 9; class 1 at 1,4,7 → keep 4;
	// class 2 at 2,5,8 → keep 5.
	want := []int{3, 4, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStratifiedIndicesKeepAll(t *testing.T) {
	labels := []int{0, 1, 0, 1}
	got := StratifiedIndices(labels, 1)
	if len(got) != 4 {
		t.Fatalf("k=1 should keep all, got %v", got)
	}
	got = StratifiedIndices(labels, 0)
	if len(got) != 4 {
		t.Fatalf("k=0 should keep all, got %v", got)
	}
}

func BenchmarkAddPlane64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := imgutil.NewGray(64, 64)
	rng.Read(g.Pix)
	a := NewAccumulator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.AddGray(g)
	}
}
