// Package freqstat implements the frequency component analysis of
// DeepN-JPEG (Algorithm 1): class-stratified image sampling, block-wise
// DCT, and per-band statistics of the un-quantized coefficients. The
// standard deviation δ(i,j) of each band is the importance signal the
// quantization table design consumes — a large δ means the band carries
// energy across the dataset and therefore contributes to DNN feature
// learning (Eq. 2 of the paper).
package freqstat

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/dct"
	"repro/internal/imgutil"
)

// Accumulator gathers running per-band statistics with Welford's algorithm,
// so datasets of any size stream through in O(1) memory.
type Accumulator struct {
	n    int64
	mean [64]float64
	m2   [64]float64
	min  [64]float64
	max  [64]float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	a := &Accumulator{}
	for i := range a.min {
		a.min[i] = math.Inf(1)
		a.max[i] = math.Inf(-1)
	}
	return a
}

// AddBlock folds one block of DCT coefficients (natural order) into the
// statistics.
func (a *Accumulator) AddBlock(b *dct.Block) {
	a.n++
	inv := 1 / float64(a.n)
	for i := 0; i < 64; i++ {
		v := b[i]
		d := v - a.mean[i]
		a.mean[i] += d * inv
		a.m2[i] += d * (v - a.mean[i])
		if v < a.min[i] {
			a.min[i] = v
		}
		if v > a.max[i] {
			a.max[i] = v
		}
	}
}

// AddPlane partitions a sample plane into 8×8 blocks (edge-replicated),
// applies the JPEG level shift and forward DCT, and accumulates every
// block.
func (a *Accumulator) AddPlane(pix []uint8, w, h int) {
	grid := imgutil.GridFor(w, h)
	var tile [64]uint8
	var blk dct.Block
	for by := 0; by < grid.BlocksY; by++ {
		for bx := 0; bx < grid.BlocksX; bx++ {
			imgutil.ExtractBlock(pix, w, h, bx, by, &tile)
			dct.LevelShift(tile[:], &blk)
			dct.Forward(&blk)
			a.AddBlock(&blk)
		}
	}
}

// AddGray accumulates a grayscale image.
func (a *Accumulator) AddGray(g *imgutil.Gray) { a.AddPlane(g.Pix, g.W, g.H) }

// AddRGBLuma accumulates the luma plane of a color image, the channel the
// paper's analysis (and the luma quantization table) is driven by.
func (a *Accumulator) AddRGBLuma(im *imgutil.RGB) {
	p := imgutil.ToYCbCr(im)
	a.AddPlane(p.Y, im.W, im.H)
}

// AddRGBChroma accumulates both chroma planes of a color image, for
// deriving a chroma quantization table with the same machinery.
func (a *Accumulator) AddRGBChroma(im *imgutil.RGB) {
	p := imgutil.ToYCbCr(im)
	a.AddPlane(p.Cb, im.W, im.H)
	a.AddPlane(p.Cr, im.W, im.H)
}

// Blocks reports how many blocks have been accumulated.
func (a *Accumulator) Blocks() int64 { return a.n }

// Merge folds the statistics of b into a, as if every block added to b
// had been added to a instead, using the parallel variance combination
// of Chan, Golub & LeVeque. It is how per-worker partial accumulators
// from a parallel calibration pass collapse into one result; merging
// worker partials in a fixed order keeps the outcome deterministic
// across runs regardless of goroutine scheduling. b is left unchanged.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	n := na + nb
	for i := 0; i < 64; i++ {
		d := b.mean[i] - a.mean[i]
		a.mean[i] += d * nb / n
		a.m2[i] += b.m2[i] + d*d*na*nb/n
		if b.min[i] < a.min[i] {
			a.min[i] = b.min[i]
		}
		if b.max[i] > a.max[i] {
			a.max[i] = b.max[i]
		}
	}
	a.n += b.n
}

// Stats snapshots the accumulated per-band statistics.
func (a *Accumulator) Stats() (*Stats, error) {
	if a.n < 2 {
		return nil, fmt.Errorf("freqstat: need at least 2 blocks, have %d", a.n)
	}
	s := &Stats{Blocks: a.n}
	for i := 0; i < 64; i++ {
		s.Mean[i] = a.mean[i]
		s.Std[i] = math.Sqrt(a.m2[i] / float64(a.n-1))
		s.Min[i] = a.min[i]
		s.Max[i] = a.max[i]
	}
	return s, nil
}

// Stats holds per-band coefficient statistics in natural (row-major)
// order: index = v*8+u for vertical frequency v and horizontal u.
type Stats struct {
	Blocks int64
	Mean   [64]float64
	Std    [64]float64 // δ(i,j) in the paper
	Min    [64]float64
	Max    [64]float64
}

// StatsBinarySize is the length of a Stats value's canonical binary
// encoding: the block count followed by the four per-band arrays.
const StatsBinarySize = 8 + 4*64*8

// AppendBinary appends the canonical binary encoding of the statistics to
// b and returns the extended slice: the block count as a big-endian
// int64, then Mean, Std, Min and Max as 64 big-endian IEEE-754 bit
// patterns each. Encoding the exact bit patterns (rather than a decimal
// rendering) makes persisted statistics round-trip bit-for-bit, which the
// profile format needs for byte-identical re-encodes.
func (s *Stats) AppendBinary(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(s.Blocks))
	for _, arr := range [...]*[64]float64{&s.Mean, &s.Std, &s.Min, &s.Max} {
		for _, v := range arr {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return b
}

// StatsFromBinary parses the first StatsBinarySize bytes of b as a
// canonical statistics encoding, the exact inverse of AppendBinary.
func StatsFromBinary(b []byte) (*Stats, error) {
	if len(b) < StatsBinarySize {
		return nil, fmt.Errorf("freqstat: %d bytes for a %d-byte statistics encoding", len(b), StatsBinarySize)
	}
	s := &Stats{Blocks: int64(binary.BigEndian.Uint64(b))}
	b = b[8:]
	for _, arr := range [...]*[64]float64{&s.Mean, &s.Std, &s.Min, &s.Max} {
		for i := range arr {
			arr[i] = math.Float64frombits(binary.BigEndian.Uint64(b))
			b = b[8:]
		}
	}
	return s, nil
}

// LaplaceScale returns the maximum-entropy Laplace scale parameter b for a
// band under the zero-mean model of Reininger & Gibson (variance = 2b²),
// the distribution the paper cites for AC coefficients.
func (s *Stats) LaplaceScale(band int) float64 {
	return s.Std[band] / math.Sqrt2
}

// MaxStd returns the largest per-band standard deviation, the δmax anchor
// used when fitting the LF segment of the piece-wise linear mapping.
func (s *Stats) MaxStd() float64 {
	m := 0.0
	for _, v := range s.Std {
		if v > m {
			m = v
		}
	}
	return m
}

// Band classifies a frequency component by importance.
type Band int

const (
	// LF marks the six most important bands (largest δ in magnitude-based
	// segmentation; lowest zig-zag positions in position-based).
	LF Band = iota
	// MF marks importance ranks 7–28.
	MF
	// HF marks importance ranks 29–64.
	HF
)

func (b Band) String() string {
	switch b {
	case LF:
		return "LF"
	case MF:
		return "MF"
	case HF:
		return "HF"
	default:
		return "?"
	}
}

// Band size boundaries from the paper (§3.2.2, following [25]): LF = ranks
// 1..6, MF = 7..28, HF = 29..64.
const (
	LFCount = 6
	MFCount = 22
)

// Segmentation assigns each of the 64 bands to LF/MF/HF and records the
// importance ranking that produced the assignment.
type Segmentation struct {
	Class [64]Band // per band, natural order
	// Rank maps natural index → importance rank (0 = most important).
	Rank [64]int
	// ByRank maps importance rank → natural index.
	ByRank [64]int
	// T1 and T2 are the δ thresholds at the HF/MF and MF/LF boundaries,
	// defined for magnitude-based segmentations (zero otherwise).
	T1, T2 float64
}

func classForRank(rank int) Band {
	switch {
	case rank < LFCount:
		return LF
	case rank < LFCount+MFCount:
		return MF
	default:
		return HF
	}
}

// SegmentByMagnitude ranks bands by descending δ — the paper's proposal.
// T1 is the δ at the MF→HF boundary and T2 at the LF→MF boundary, so that
// Q(δ) can dispatch on thresholds exactly as Eq. 3 does.
func SegmentByMagnitude(s *Stats) Segmentation {
	var seg Segmentation
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.Std[idx[a]] > s.Std[idx[b]] })
	for rank, n := range idx {
		seg.Rank[n] = rank
		seg.ByRank[rank] = n
		seg.Class[n] = classForRank(rank)
	}
	// Thresholds sit at the last member of each class, so δ ≤ T1 ⇔ HF and
	// δ > T2 ⇔ LF for distinct δ values.
	seg.T1 = s.Std[seg.ByRank[LFCount+MFCount]] // largest HF δ
	seg.T2 = s.Std[seg.ByRank[LFCount]]         // largest MF δ
	return seg
}

// SegmentByPosition ranks bands by zig-zag position — the coarse-grained
// baseline ("position based") the paper compares against, which assumes
// low spatial frequency is always most important.
func SegmentByPosition() Segmentation {
	var seg Segmentation
	for rank := 0; rank < 64; rank++ {
		n := zigZagOrder[rank]
		seg.Rank[n] = rank
		seg.ByRank[rank] = n
		seg.Class[n] = classForRank(rank)
	}
	return seg
}

// zigZagOrder duplicates qtable.ZigZagOrder to keep freqstat free of a
// qtable dependency (plm composes the two packages).
var zigZagOrder = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// StratifiedIndices implements the sampling loop of Algorithm 1: for each
// class, keep every k-th image. labels maps image index → class. The
// returned indices preserve dataset order.
func StratifiedIndices(labels []int, k int) []int {
	if k <= 1 {
		out := make([]int, len(labels))
		for i := range out {
			out[i] = i
		}
		return out
	}
	perClass := map[int]int{}
	var out []int
	for i, class := range labels {
		perClass[class]++
		if perClass[class]%k == 0 {
			out = append(out, i)
		}
	}
	return out
}
