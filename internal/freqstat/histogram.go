package freqstat

import (
	"fmt"
	"math"

	"repro/internal/dct"
)

// Histogram records the empirical distribution of one band's coefficients
// with fixed-width bins over a symmetric range, supporting the
// distribution diagnostics the paper bases its model on (Reininger &
// Gibson: AC coefficients are approximately zero-mean Laplacian).
type Histogram struct {
	Band     int // natural band index
	BinWidth float64
	// Counts[i] covers [Lo + i·BinWidth, Lo + (i+1)·BinWidth).
	Counts []int64
	Lo     float64
	// Under/Over count samples outside the range.
	Under, Over int64
	Total       int64
}

// NewHistogram builds an empty histogram for a band covering ±halfRange
// with the given number of bins.
func NewHistogram(band, bins int, halfRange float64) (*Histogram, error) {
	if band < 0 || band > 63 {
		return nil, fmt.Errorf("freqstat: band %d out of range", band)
	}
	if bins < 2 {
		return nil, fmt.Errorf("freqstat: need at least 2 bins, got %d", bins)
	}
	if halfRange <= 0 {
		return nil, fmt.Errorf("freqstat: half range %g must be positive", halfRange)
	}
	return &Histogram{
		Band:     band,
		BinWidth: 2 * halfRange / float64(bins),
		Counts:   make([]int64, bins),
		Lo:       -halfRange,
	}, nil
}

// Add folds one coefficient block into the histogram.
func (h *Histogram) Add(b *dct.Block) {
	v := b[h.Band]
	h.Total++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Lo+float64(len(h.Counts))*h.BinWidth:
		h.Over++
	default:
		h.Counts[int((v-h.Lo)/h.BinWidth)]++
	}
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Lo + (float64(best)+0.5)*h.BinWidth
}

// LaplaceFitError measures how far the empirical distribution is from the
// Laplace(0, b) model with scale b, as total variation distance in [0, 1].
// Small values support the paper's modeling assumption; DC (which is not
// zero-mean) typically scores poorly.
func (h *Histogram) LaplaceFitError(scale float64) (float64, error) {
	if scale <= 0 {
		return 0, fmt.Errorf("freqstat: Laplace scale %g must be positive", scale)
	}
	if h.Total == 0 {
		return 0, fmt.Errorf("freqstat: empty histogram")
	}
	cdf := func(x float64) float64 {
		if x < 0 {
			return 0.5 * math.Exp(x/scale)
		}
		return 1 - 0.5*math.Exp(-x/scale)
	}
	tv := 0.0
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*h.BinWidth
		hi := lo + h.BinWidth
		model := cdf(hi) - cdf(lo)
		emp := float64(c) / float64(h.Total)
		tv += math.Abs(model - emp)
	}
	// Mass outside the histogram range.
	tv += math.Abs(cdf(h.Lo) - float64(h.Under)/float64(h.Total))
	tv += math.Abs((1 - cdf(h.Lo+float64(len(h.Counts))*h.BinWidth)) - float64(h.Over)/float64(h.Total))
	return tv / 2, nil
}

// HistogramSet accumulates histograms for every band simultaneously while
// scanning planes, sharing the DCT work.
type HistogramSet struct {
	Hists [64]*Histogram
}

// NewHistogramSet builds histograms for all 64 bands.
func NewHistogramSet(bins int, halfRange float64) (*HistogramSet, error) {
	s := &HistogramSet{}
	for band := 0; band < 64; band++ {
		h, err := NewHistogram(band, bins, halfRange)
		if err != nil {
			return nil, err
		}
		s.Hists[band] = h
	}
	return s, nil
}

// AddBlock folds one coefficient block into every band histogram.
func (s *HistogramSet) AddBlock(b *dct.Block) {
	for _, h := range s.Hists {
		h.Add(b)
	}
}
