package freqstat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dct"
)

func randomBlock(rng *rand.Rand) *dct.Block {
	var b dct.Block
	for i := range b {
		b[i] = rng.NormFloat64()*40 + rng.Float64()*8
	}
	return &b
}

// TestMergeMatchesSequential feeds one stream of blocks to a single
// accumulator and the same stream split across partials merged in order,
// and requires the resulting statistics to agree to floating-point
// tolerance (Chan et al. merging is algebraically exact; only rounding
// differs from streaming Welford).
func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	blocks := make([]*dct.Block, 257)
	for i := range blocks {
		blocks[i] = randomBlock(rng)
	}

	seq := NewAccumulator()
	for _, b := range blocks {
		seq.AddBlock(b)
	}
	wantStats, err := seq.Stats()
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{2, 3, 8} {
		merged := NewAccumulator()
		for p := 0; p < parts; p++ {
			part := NewAccumulator()
			lo, hi := p*len(blocks)/parts, (p+1)*len(blocks)/parts
			for _, b := range blocks[lo:hi] {
				part.AddBlock(b)
			}
			merged.Merge(part)
		}
		if merged.Blocks() != seq.Blocks() {
			t.Fatalf("parts=%d: merged %d blocks, want %d", parts, merged.Blocks(), seq.Blocks())
		}
		got, err := merged.Stats()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if math.Abs(got.Mean[i]-wantStats.Mean[i]) > 1e-9 {
				t.Fatalf("parts=%d band %d: mean %g vs %g", parts, i, got.Mean[i], wantStats.Mean[i])
			}
			if math.Abs(got.Std[i]-wantStats.Std[i]) > 1e-9 {
				t.Fatalf("parts=%d band %d: std %g vs %g", parts, i, got.Std[i], wantStats.Std[i])
			}
			if got.Min[i] != wantStats.Min[i] || got.Max[i] != wantStats.Max[i] {
				t.Fatalf("parts=%d band %d: min/max mismatch", parts, i)
			}
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	full := NewAccumulator()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 16; i++ {
		full.AddBlock(randomBlock(rng))
	}
	want, err := full.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// empty.Merge(full) adopts full's state; full.Merge(empty) is a no-op.
	empty := NewAccumulator()
	empty.Merge(full)
	got, err := empty.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatal("merging into an empty accumulator does not adopt the source state")
	}
	full.Merge(NewAccumulator())
	got2, err := full.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if *got2 != *want {
		t.Fatal("merging an empty accumulator changed the statistics")
	}
}
