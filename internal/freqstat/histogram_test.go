package freqstat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dct"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(-1, 10, 100); err == nil {
		t.Error("negative band accepted")
	}
	if _, err := NewHistogram(0, 1, 100); err == nil {
		t.Error("single bin accepted")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero range accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(5, 4, 2) // bins of width 1 over [−2, 2)
	if err != nil {
		t.Fatal(err)
	}
	add := func(v float64) {
		var b dct.Block
		b[5] = v
		h.Add(&b)
	}
	add(-1.5) // bin 0
	add(-0.5) // bin 1
	add(0.5)  // bin 2
	add(1.5)  // bin 3
	add(-3)   // under
	add(2)    // over (range is half-open)
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 || h.Total != 6 {
		t.Fatalf("under/over/total = %d/%d/%d", h.Under, h.Over, h.Total)
	}
}

func TestHistogramMode(t *testing.T) {
	h, err := NewHistogram(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b dct.Block
	for i := 0; i < 5; i++ {
		b[0] = 0.5
		h.Add(&b)
	}
	b[0] = -1.5
	h.Add(&b)
	if got := h.Mode(); got != 0.5 {
		t.Fatalf("mode %g, want 0.5", got)
	}
}

// TestLaplaceFitOnLaplaceData: synthetic Laplace samples must fit their
// own scale well and fit a wildly wrong scale poorly.
func TestLaplaceFitOnLaplaceData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := NewHistogram(3, 64, 80)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 8.0
	for i := 0; i < 20000; i++ {
		// Inverse-CDF sampling of Laplace(0, scale).
		u := rng.Float64() - 0.5
		v := -scale * math.Copysign(math.Log(1-2*math.Abs(u)), u)
		var b dct.Block
		b[3] = v
		h.Add(&b)
	}
	good, err := h.LaplaceFitError(scale)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := h.LaplaceFitError(scale * 8)
	if err != nil {
		t.Fatal(err)
	}
	if good > 0.05 {
		t.Fatalf("fit error %g on true-scale Laplace data", good)
	}
	if bad < 3*good {
		t.Fatalf("wrong scale fit %g not clearly worse than %g", bad, good)
	}
}

func TestLaplaceFitErrors(t *testing.T) {
	h, err := NewHistogram(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.LaplaceFitError(1); err == nil {
		t.Error("empty histogram accepted")
	}
	var b dct.Block
	h.Add(&b)
	if _, err := h.LaplaceFitError(0); err == nil {
		t.Error("zero scale accepted")
	}
}

// TestHistogramSetAgainstStats: the σ estimated from histogram second
// moments must roughly match the Welford accumulator on the same data.
func TestHistogramSetAgainstStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set, err := NewHistogramSet(128, 200)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator()
	for i := 0; i < 3000; i++ {
		var b dct.Block
		for j := range b {
			b[j] = rng.NormFloat64() * float64(j%8+1)
		}
		set.AddBlock(&b)
		acc.AddBlock(&b)
	}
	stats, err := acc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, band := range []int{1, 7, 35} {
		h := set.Hists[band]
		var m, m2 float64
		for i, c := range h.Counts {
			center := h.Lo + (float64(i)+0.5)*h.BinWidth
			m += center * float64(c)
			m2 += center * center * float64(c)
		}
		n := float64(h.Total - h.Under - h.Over)
		mean := m / n
		std := math.Sqrt(m2/n - mean*mean)
		if math.Abs(std-stats.Std[band]) > 0.15*stats.Std[band]+0.5 {
			t.Fatalf("band %d: histogram σ %.2f vs welford %.2f", band, std, stats.Std[band])
		}
	}
}
