//go:build race

package deepnjpeg

const raceEnabled = true
