package deepnjpeg

// Tests for the public coefficient-domain requantization API — the code
// path the CLI and the HTTP server both dispatch through.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"image/jpeg"
	"runtime"
	"testing"
)

// requantizeFixture returns a calibrated codec plus high-quality source
// streams for its images.
func requantizeFixture(t *testing.T) (*Codec, []*Image, [][]byte) {
	t.Helper()
	codec, images := batchCodec(t)
	streams := make([][]byte, len(images))
	for i, img := range images {
		data, err := EncodeJPEG(img, 95)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = data
	}
	return codec, images, streams
}

// spliceAPP1 inserts an EXIF-style APP1 segment right after a stream's
// SOI marker, the way cameras write it.
func spliceAPP1(t *testing.T, stream, payload []byte) []byte {
	t.Helper()
	if len(stream) < 2 || stream[0] != 0xFF || stream[1] != 0xD8 {
		t.Fatal("stream does not start with SOI")
	}
	n := len(payload) + 2
	seg := append([]byte{0xFF, 0xE1, byte(n >> 8), byte(n)}, payload...)
	out := append([]byte{}, stream[:2]...)
	out = append(out, seg...)
	return append(out, stream[2:]...)
}

// TestRequantizeMetadataPassthroughPublic pins the public-API contract:
// an EXIF segment spliced into the source survives Requantize
// byte-identical by default and disappears under StripMetadata, with
// stdlib accepting the stream either way.
func TestRequantizeMetadataPassthroughPublic(t *testing.T) {
	codec, _, streams := requantizeFixture(t)
	exif := []byte("Exif\x00\x00MM\x00\x2a\x00\x00\x00\x08public-api")
	src := spliceAPP1(t, streams[0], exif)

	out, err := codec.Requantize(src, RequantizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, exif) {
		t.Fatal("EXIF payload lost through default requantize")
	}
	if _, err := jpeg.Decode(bytes.NewReader(out)); err != nil {
		t.Fatalf("stdlib rejects the metadata-carrying requantized stream: %v", err)
	}

	stripped, err := codec.Requantize(src, RequantizeOptions{StripMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stripped, exif) {
		t.Fatal("StripMetadata left the EXIF payload in the output")
	}
	if _, err := jpeg.Decode(bytes.NewReader(stripped)); err != nil {
		t.Fatalf("stdlib rejects the stripped requantized stream: %v", err)
	}
}

func TestRequantizeRoundTrips(t *testing.T) {
	codec, images, streams := requantizeFixture(t)
	for i, src := range streams[:4] {
		out, err := codec.Requantize(src, RequantizeOptions{OptimizeHuffman: true})
		if err != nil {
			t.Fatal(err)
		}
		// The retargeted stream stays standard baseline JFIF: both our
		// decoder and the stdlib must read it at source geometry.
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if back.W != images[i].W || back.H != images[i].H {
			t.Fatalf("stream %d decoded %dx%d, want %dx%d", i, back.W, back.H, images[i].W, images[i].H)
		}
		if _, err := jpeg.Decode(bytes.NewReader(out)); err != nil {
			t.Fatalf("stream %d: stdlib cannot decode requantized output: %v", i, err)
		}
		psnr, err := PSNR(images[i], back)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 15 {
			t.Fatalf("stream %d: requantized fidelity %.1f dB too low", i, psnr)
		}
	}
}

func TestRequantizeJPEGShrinksAtLowerQuality(t *testing.T) {
	_, _, streams := requantizeFixture(t)
	src := streams[0]
	out, err := RequantizeJPEG(src, 40, RequantizeOptions{OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(src) {
		t.Fatalf("qf-40 requantization grew the stream: %d → %d bytes", len(src), len(out))
	}
	if _, err := Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestRequantizeBatchMatchesSequential(t *testing.T) {
	codec, _, streams := requantizeFixture(t)
	ropts := RequantizeOptions{OptimizeHuffman: true}
	want := make([][]byte, len(streams))
	for i, src := range streams {
		out, err := codec.Requantize(src, ropts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := codec.RequantizeBatch(context.Background(), streams,
				BatchOptions{Workers: workers}, ropts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("stream %d differs from sequential requantize", i)
				}
			}
		})
	}
}

func TestRequantizeJPEGBatchMatchesSequential(t *testing.T) {
	_, _, streams := requantizeFixture(t)
	ropts := RequantizeOptions{}
	want := make([][]byte, len(streams))
	for i, src := range streams {
		out, err := RequantizeJPEG(src, 60, ropts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	got, err := RequantizeJPEGBatch(context.Background(), streams, 60, BatchOptions{Workers: 4}, ropts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("stream %d differs from sequential requantize", i)
		}
	}
}

func TestRequantizeBatchPartialFailure(t *testing.T) {
	codec, _, streams := requantizeFixture(t)
	streams[2] = []byte("definitely not a JPEG")
	streams[5] = streams[5][:10] // truncated header
	got, err := codec.RequantizeBatch(context.Background(), streams, BatchOptions{Workers: 4}, RequantizeOptions{})
	if err == nil {
		t.Fatal("corrupt items must surface an error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not a *BatchError", err)
	}
	if len(be.Items) != 2 || be.Items[0].Index != 2 || be.Items[1].Index != 5 {
		t.Fatalf("failed items %v, want indices 2 and 5", be.Items)
	}
	for i, out := range got {
		failed := i == 2 || i == 5
		if failed && out != nil {
			t.Fatalf("failed item %d left a non-nil result", i)
		}
		if !failed && out == nil {
			t.Fatalf("healthy item %d lost its result", i)
		}
	}
}

func TestRequantizeMaxPixels(t *testing.T) {
	_, _, streams := requantizeFixture(t)
	_, err := RequantizeJPEG(streams[0], 60, RequantizeOptions{MaxPixels: 16})
	if err == nil {
		t.Fatal("a 32x32 source must exceed a 16-pixel limit")
	}
}

func TestRequantizeBatchCancellation(t *testing.T) {
	codec, _, streams := requantizeFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := codec.RequantizeBatch(ctx, streams, BatchOptions{Workers: 2}, RequantizeOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
}
